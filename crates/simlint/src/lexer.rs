//! A lightweight Rust scanner: just enough lexing for line-oriented
//! static analysis.
//!
//! The scanner turns a source file into a stream of [`Token`]s with
//! comments, string literals and char literals stripped, so rules that
//! pattern-match identifier sequences (`HashMap`, `rm . freeze (`) never
//! trip over prose in doc comments or diagnostics text. Two properties
//! matter for the rule engine:
//!
//! * every token carries its 1-based line and column, so findings point
//!   at the exact source location;
//! * tokens inside `#[cfg(test)]`-gated items (and `#[test]` functions)
//!   are flagged `in_test`, because the determinism rules apply to
//!   simulation code, not to its tests.
//!
//! This is intentionally *not* a full Rust lexer — no token trees, no
//! keyword table, no spans into the original text. It handles the lexical
//! constructs that would otherwise cause false positives: nested block
//! comments, raw strings (`r#"…"#`), byte strings, char literals vs.
//! lifetimes, and `::` path separators (merged into one token so path
//! patterns stay readable).

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `fn`, `pub`, …).
    Ident,
    /// A single punctuation character, or the merged `::` separator.
    Punct,
    /// A literal (string, char, number). Contents are not retained for
    /// strings/chars — the token only preserves source structure.
    Literal,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (byte offset within the line).
    pub col: u32,
    /// Token text (`""` for string/char literals).
    pub text: String,
    /// Token class.
    pub kind: TokKind,
    /// Whether the token sits inside test-gated code.
    pub in_test: bool,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s` (single char or `::`).
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Lexes `source` into tokens and marks test-gated regions.
pub fn lex(source: &str) -> Vec<Token> {
    let mut tokens = scan(source);
    mark_test_regions(&mut tokens);
    tokens
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Raw character scan: comments and literal bodies are consumed, code
/// tokens are emitted.
fn scan(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    // Advances the cursor over `n` chars, tracking line/column.
    macro_rules! bump {
        ($n:expr) => {
            for _ in 0..$n {
                if i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }

        // Line comments (//, ///, //!) — skip to end of line.
        if c == '/' && next == Some('/') {
            while i < chars.len() && chars[i] != '\n' {
                bump!(1);
            }
            continue;
        }

        // Block comments, nesting included.
        if c == '/' && next == Some('*') {
            bump!(2);
            let mut depth = 1usize;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!(2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!(2);
                } else {
                    bump!(1);
                }
            }
            continue;
        }

        // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#.
        if (c == 'r' || c == 'b') && raw_string_lookahead(&chars, i) {
            let (tok_line, tok_col) = (line, col);
            // Consume the prefix letters.
            while i < chars.len() && (chars[i] == 'r' || chars[i] == 'b') {
                bump!(1);
            }
            if chars.get(i) == Some(&'#') || chars.get(i) == Some(&'"') {
                let mut hashes = 0usize;
                while chars.get(i) == Some(&'#') {
                    hashes += 1;
                    bump!(1);
                }
                bump!(1); // opening quote
                'raw: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut ok = true;
                        for h in 0..hashes {
                            if chars.get(i + 1 + h) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            bump!(1 + hashes);
                            break 'raw;
                        }
                    }
                    bump!(1);
                }
                tokens.push(Token {
                    line: tok_line,
                    col: tok_col,
                    text: String::new(),
                    kind: TokKind::Literal,
                    in_test: false,
                });
                continue;
            }
            // Not actually a raw string (e.g. identifier starting with r/b
            // followed by something else) — fall through to ident handling
            // from the already-bumped position.
            let mut text = String::from(if c == 'r' { "r" } else { "b" });
            while i < chars.len() && is_ident_continue(chars[i]) {
                text.push(chars[i]);
                bump!(1);
            }
            tokens.push(Token {
                line: tok_line,
                col: tok_col,
                text,
                kind: TokKind::Ident,
                in_test: false,
            });
            continue;
        }

        // Byte char literal b'x'.
        if c == 'b' && next == Some('\'') {
            let (tok_line, tok_col) = (line, col);
            bump!(2);
            consume_char_literal_body(&chars, &mut i, &mut line, &mut col);
            tokens.push(Token {
                line: tok_line,
                col: tok_col,
                text: String::new(),
                kind: TokKind::Literal,
                in_test: false,
            });
            continue;
        }

        // Ordinary string literal.
        if c == '"' {
            let (tok_line, tok_col) = (line, col);
            bump!(1);
            while i < chars.len() {
                if chars[i] == '\\' {
                    bump!(2);
                } else if chars[i] == '"' {
                    bump!(1);
                    break;
                } else {
                    bump!(1);
                }
            }
            tokens.push(Token {
                line: tok_line,
                col: tok_col,
                text: String::new(),
                kind: TokKind::Literal,
                in_test: false,
            });
            continue;
        }

        // Char literal vs. lifetime.
        if c == '\'' {
            let is_char_lit = match next {
                Some('\\') => true,
                Some(n) if is_ident_start(n) => chars.get(i + 2) == Some(&'\''),
                Some(_) => true, // '(' etc. can only be a char literal
                None => false,
            };
            if is_char_lit {
                let (tok_line, tok_col) = (line, col);
                bump!(1);
                consume_char_literal_body(&chars, &mut i, &mut line, &mut col);
                tokens.push(Token {
                    line: tok_line,
                    col: tok_col,
                    text: String::new(),
                    kind: TokKind::Literal,
                    in_test: false,
                });
            } else {
                // Lifetime: skip the quote and the label.
                bump!(1);
                while i < chars.len() && is_ident_continue(chars[i]) {
                    bump!(1);
                }
            }
            continue;
        }

        // Identifiers and keywords (incl. r#raw idents, handled above).
        if is_ident_start(c) {
            let (tok_line, tok_col) = (line, col);
            let mut text = String::new();
            while i < chars.len() && is_ident_continue(chars[i]) {
                text.push(chars[i]);
                bump!(1);
            }
            tokens.push(Token {
                line: tok_line,
                col: tok_col,
                text,
                kind: TokKind::Ident,
                in_test: false,
            });
            continue;
        }

        // Numbers: consumed as opaque literals. `1.5e-3` hangs together;
        // `0..10` must not swallow the range dots.
        if c.is_ascii_digit() {
            let (tok_line, tok_col) = (line, col);
            while i < chars.len() {
                let d = chars[i];
                if is_ident_continue(d) {
                    let was_exp = d == 'e' || d == 'E';
                    bump!(1);
                    if was_exp
                        && (chars.get(i) == Some(&'+') || chars.get(i) == Some(&'-'))
                        && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                    {
                        bump!(1);
                    }
                } else if d == '.' && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                    bump!(1);
                } else {
                    break;
                }
            }
            tokens.push(Token {
                line: tok_line,
                col: tok_col,
                text: String::new(),
                kind: TokKind::Literal,
                in_test: false,
            });
            continue;
        }

        // `::` merged into a single token for readable path patterns.
        if c == ':' && next == Some(':') {
            tokens.push(Token {
                line,
                col,
                text: "::".into(),
                kind: TokKind::Punct,
                in_test: false,
            });
            bump!(2);
            continue;
        }

        // Everything else: single-char punctuation.
        tokens.push(Token {
            line,
            col,
            text: c.to_string(),
            kind: TokKind::Punct,
            in_test: false,
        });
        bump!(1);
    }
    tokens
}

/// Whether position `i` (at an `r`/`b`) starts a raw or byte string.
fn raw_string_lookahead(chars: &[char], i: usize) -> bool {
    let mut j = i;
    while chars.get(j) == Some(&'r') || chars.get(j) == Some(&'b') {
        j += 1;
        if j - i > 2 {
            return false;
        }
    }
    match chars.get(j) {
        Some('"') => true,
        Some('#') => {
            let mut k = j;
            while chars.get(k) == Some(&'#') {
                k += 1;
            }
            chars.get(k) == Some(&'"')
        }
        _ => false,
    }
}

/// Consumes the body of a char literal after the opening quote.
fn consume_char_literal_body(chars: &[char], i: &mut usize, line: &mut u32, col: &mut u32) {
    let bump = |i: &mut usize, line: &mut u32, col: &mut u32| {
        if *i < chars.len() {
            if chars[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        }
    };
    while *i < chars.len() {
        if chars[*i] == '\\' {
            bump(i, line, col);
            bump(i, line, col);
        } else if chars[*i] == '\'' {
            bump(i, line, col);
            break;
        } else {
            bump(i, line, col);
        }
    }
}

/// Marks tokens belonging to `#[cfg(test)]`-gated items and `#[test]`
/// functions as `in_test`.
///
/// The pass walks the token stream once: on a test-flavoured attribute it
/// arms a pending flag; the next item (everything up to the matching `}`
/// of its body, or up to `;` for bodiless items) is then marked. Nested
/// attributes between the gate and the item (`#[derive]`, `#[allow]`)
/// keep the flag armed.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0usize;
    let mut pending_test = false;
    while i < tokens.len() {
        if tokens[i].is_punct("#") {
            // Attribute: `#` `[` … `]` or `#` `!` `[` … `]`.
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].is_punct("!") {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct("[") {
                let start = j + 1;
                let mut depth = 1usize;
                let mut k = start;
                while k < tokens.len() && depth > 0 {
                    if tokens[k].is_punct("[") {
                        depth += 1;
                    } else if tokens[k].is_punct("]") {
                        depth -= 1;
                    }
                    k += 1;
                }
                if attr_is_test(&tokens[start..k.saturating_sub(1)]) {
                    pending_test = true;
                }
                i = k;
                continue;
            }
        }
        if pending_test && tokens[i].kind == TokKind::Ident {
            // The gated item: scan to its body `{` (or terminating `;`)
            // and mark through the matching close.
            let item_start = i;
            let mut j = i;
            let mut depth = 0isize;
            let mut end = tokens.len();
            while j < tokens.len() {
                if tokens[j].is_punct("{") {
                    depth += 1;
                } else if tokens[j].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                } else if tokens[j].is_punct(";") && depth == 0 {
                    end = j + 1;
                    break;
                } else if tokens[j].is_punct("#") && depth == 0 && j > item_start {
                    // A sibling attribute before any body: stay pending,
                    // restart attr handling from here.
                    break;
                }
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct("#") && depth == 0 {
                i = j;
                continue;
            }
            for t in tokens[item_start..end].iter_mut() {
                t.in_test = true;
            }
            pending_test = false;
            i = end;
            continue;
        }
        i += 1;
    }
}

/// Whether an attribute's token body gates test code: `test`,
/// `cfg(test)`, or a path ending in `::test` — but not `cfg(not(test))`.
fn attr_is_test(body: &[Token]) -> bool {
    if body.is_empty() {
        return false;
    }
    // `#[test]` / `#[tokio::test]`: last path segment is `test` and the
    // attribute is just a path.
    if body
        .iter()
        .all(|t| t.kind == TokKind::Ident || t.is_punct("::"))
        && body.last().is_some_and(|t| t.is_ident("test"))
    {
        return true;
    }
    // `#[cfg(test)]` and `#[cfg(all(test, …))]`: `test` appears directly
    // inside a `cfg(..)` with no `not(` wrapper in front of it.
    if body.first().is_some_and(|t| t.is_ident("cfg")) {
        let mut not_depth: Vec<usize> = Vec::new();
        let mut depth = 0usize;
        let mut prev_ident: Option<&str> = None;
        for t in body {
            if t.is_punct("(") {
                depth += 1;
                if prev_ident == Some("not") {
                    not_depth.push(depth);
                }
            } else if t.is_punct(")") {
                if not_depth.last() == Some(&depth) {
                    not_depth.pop();
                }
                depth = depth.saturating_sub(1);
            } else if t.is_ident("test") && not_depth.is_empty() {
                return true;
            }
            prev_ident = if t.kind == TokKind::Ident {
                Some(t.text.as_str())
            } else {
                None
            };
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(tokens: &[Token]) -> Vec<(&str, bool)> {
        tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text.as_str(), t.in_test))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let toks = lex("let x = \"HashMap\"; // HashMap\n/* HashMap */ let y = 1;");
        assert!(!idents(&toks).iter().any(|(t, _)| *t == "HashMap"));
        assert!(idents(&toks).iter().any(|(t, _)| *t == "y"));
    }

    #[test]
    fn raw_strings_and_chars_are_stripped() {
        let toks =
            lex("let s = r#\"HashMap \"quoted\" text\"#; let c = 'H'; let l: &'a str = \"\";");
        assert!(!idents(&toks).iter().any(|(t, _)| *t == "HashMap"));
        // The lifetime label is skipped entirely, not mistaken for a char.
        assert!(!idents(&toks).iter().any(|(t, _)| *t == "a"));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}";
        let toks = lex(src);
        let ids = idents(&toks);
        assert!(ids.contains(&("live", false)));
        assert!(ids.contains(&("helper", true)));
        assert!(ids.contains(&("after", false)));
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let toks = lex("#[cfg(not(test))]\nfn live() { let m = 1; }");
        assert!(idents(&toks).contains(&("live", false)));
    }

    #[test]
    fn test_fn_attribute_is_marked() {
        let toks = lex("#[test]\nfn check() { body(); }\nfn live() {}");
        let ids = idents(&toks);
        assert!(ids.contains(&("body", true)));
        assert!(ids.contains(&("live", false)));
    }

    #[test]
    fn intervening_attributes_keep_the_gate_armed() {
        let toks = lex("#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn inner() {} }");
        assert!(idents(&toks).contains(&("inner", true)));
    }

    #[test]
    fn path_separator_is_merged() {
        let toks = lex("std::time::Instant::now()");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["std", "::", "time", "::", "Instant", "::", "now", "(", ")"]
        );
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let toks = lex("for i in 0..10 { x(1.5e-3); }");
        assert!(toks.iter().any(|t| t.is_punct(".")));
        assert!(idents(&toks).iter().any(|(t, _)| *t == "x"));
    }
}
