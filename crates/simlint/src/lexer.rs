//! A lightweight Rust scanner: just enough lexing for line-oriented
//! static analysis.
//!
//! The scanner turns a source file into a stream of [`Token`]s with
//! comments, string literals and char literals stripped, so rules that
//! pattern-match identifier sequences (`HashMap`, `rm . freeze (`) never
//! trip over prose in doc comments or diagnostics text. Two properties
//! matter for the rule engine:
//!
//! * every token carries its 1-based line and column, so findings point
//!   at the exact source location;
//! * tokens inside `#[cfg(test)]`-gated items (and `#[test]` functions)
//!   are flagged `in_test`, because the determinism rules apply to
//!   simulation code, not to its tests.
//!
//! This is intentionally *not* a full Rust lexer — no token trees, no
//! keyword table, no spans into the original text. It handles the lexical
//! constructs that would otherwise cause false positives: nested block
//! comments, raw strings (`r#"…"#`), byte strings, char literals vs.
//! lifetimes, and `::` path separators (merged into one token so path
//! patterns stay readable).

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `fn`, `pub`, …).
    Ident,
    /// A single punctuation character, or the merged `::` separator.
    Punct,
    /// A number or char literal. Numbers retain their text (the taint
    /// layer types `0.5` as a float); chars stay empty.
    Literal,
    /// A string literal. The text is the *content* between the quotes
    /// (escape sequences verbatim) — the T1 label analysis compares
    /// constant stream labels, so the content matters here, unlike the
    /// identifier rules which never match on string tokens.
    Str,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (byte offset within the line).
    pub col: u32,
    /// Token text (`""` for char literals; string content for [`TokKind::Str`]).
    pub text: String,
    /// Token class.
    pub kind: TokKind,
    /// Whether the token sits inside test-gated code.
    pub in_test: bool,
}

/// A captured `simlint::` line comment — the raw material for inline
/// suppression directives. Only comments whose trimmed body starts with
/// `simlint::` are recorded; everything else stays stripped as before.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the `//`.
    pub line: u32,
    /// 1-based column of the `//`.
    pub col: u32,
    /// Comment body after `//`, trimmed.
    pub text: String,
    /// Whether code tokens precede the comment on its own line (a
    /// trailing directive targets its own line; a standalone one targets
    /// the next code line).
    pub trailing: bool,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s` (single char or `::`).
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Lexes `source` into tokens and marks test-gated regions.
pub fn lex(source: &str) -> Vec<Token> {
    lex_with_comments(source).0
}

/// Like [`lex`], but also returns the `simlint::` line comments the
/// suppression layer parses into directives.
pub fn lex_with_comments(source: &str) -> (Vec<Token>, Vec<Comment>) {
    let mut comments = Vec::new();
    let mut tokens = scan(source, &mut comments);
    mark_test_regions(&mut tokens);
    (tokens, comments)
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Raw character scan: comments and literal bodies are consumed, code
/// tokens are emitted, `simlint::` line comments are recorded.
fn scan(source: &str, comments: &mut Vec<Comment>) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens: Vec<Token> = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    // Advances the cursor over `n` chars, tracking line/column.
    macro_rules! bump {
        ($n:expr) => {
            for _ in 0..$n {
                if i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }

        // Line comments (//, ///, //!) — skip to end of line, but keep
        // `simlint::` directive comments for the suppression layer. A doc
        // comment's body starts with `/` or `!`, so quoting the grammar in
        // docs never registers as a directive.
        if c == '/' && next == Some('/') {
            let (tok_line, tok_col) = (line, col);
            let mut body = String::new();
            bump!(2);
            while i < chars.len() && chars[i] != '\n' {
                body.push(chars[i]);
                bump!(1);
            }
            let body = body.trim();
            if body.starts_with("simlint::") {
                comments.push(Comment {
                    line: tok_line,
                    col: tok_col,
                    text: body.to_string(),
                    trailing: tokens.last().is_some_and(|t| t.line == tok_line),
                });
            }
            continue;
        }

        // Block comments, nesting included.
        if c == '/' && next == Some('*') {
            bump!(2);
            let mut depth = 1usize;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!(2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!(2);
                } else {
                    bump!(1);
                }
            }
            continue;
        }

        // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#.
        if (c == 'r' || c == 'b') && raw_string_lookahead(&chars, i) {
            let (tok_line, tok_col) = (line, col);
            // Consume the prefix letters.
            while i < chars.len() && (chars[i] == 'r' || chars[i] == 'b') {
                bump!(1);
            }
            if chars.get(i) == Some(&'#') || chars.get(i) == Some(&'"') {
                let mut hashes = 0usize;
                while chars.get(i) == Some(&'#') {
                    hashes += 1;
                    bump!(1);
                }
                bump!(1); // opening quote
                let mut content = String::new();
                'raw: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut ok = true;
                        for h in 0..hashes {
                            if chars.get(i + 1 + h) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            bump!(1 + hashes);
                            break 'raw;
                        }
                    }
                    content.push(chars[i]);
                    bump!(1);
                }
                tokens.push(Token {
                    line: tok_line,
                    col: tok_col,
                    text: content,
                    kind: TokKind::Str,
                    in_test: false,
                });
                continue;
            }
            // Not actually a raw string (e.g. identifier starting with r/b
            // followed by something else) — fall through to ident handling
            // from the already-bumped position.
            let mut text = String::from(if c == 'r' { "r" } else { "b" });
            while i < chars.len() && is_ident_continue(chars[i]) {
                text.push(chars[i]);
                bump!(1);
            }
            tokens.push(Token {
                line: tok_line,
                col: tok_col,
                text,
                kind: TokKind::Ident,
                in_test: false,
            });
            continue;
        }

        // Byte char literal b'x'.
        if c == 'b' && next == Some('\'') {
            let (tok_line, tok_col) = (line, col);
            bump!(2);
            consume_char_literal_body(&chars, &mut i, &mut line, &mut col);
            tokens.push(Token {
                line: tok_line,
                col: tok_col,
                text: String::new(),
                kind: TokKind::Literal,
                in_test: false,
            });
            continue;
        }

        // Ordinary string literal. Content is retained (escape sequences
        // verbatim) so constant rng-stream labels are comparable.
        if c == '"' {
            let (tok_line, tok_col) = (line, col);
            let mut content = String::new();
            bump!(1);
            while i < chars.len() {
                if chars[i] == '\\' {
                    content.push(chars[i]);
                    if let Some(&esc) = chars.get(i + 1) {
                        content.push(esc);
                    }
                    bump!(2);
                } else if chars[i] == '"' {
                    bump!(1);
                    break;
                } else {
                    content.push(chars[i]);
                    bump!(1);
                }
            }
            tokens.push(Token {
                line: tok_line,
                col: tok_col,
                text: content,
                kind: TokKind::Str,
                in_test: false,
            });
            continue;
        }

        // Char literal vs. lifetime.
        if c == '\'' {
            let is_char_lit = match next {
                Some('\\') => true,
                Some(n) if is_ident_start(n) => chars.get(i + 2) == Some(&'\''),
                Some(_) => true, // '(' etc. can only be a char literal
                None => false,
            };
            if is_char_lit {
                let (tok_line, tok_col) = (line, col);
                bump!(1);
                consume_char_literal_body(&chars, &mut i, &mut line, &mut col);
                tokens.push(Token {
                    line: tok_line,
                    col: tok_col,
                    text: String::new(),
                    kind: TokKind::Literal,
                    in_test: false,
                });
            } else {
                // Lifetime: skip the quote and the label.
                bump!(1);
                while i < chars.len() && is_ident_continue(chars[i]) {
                    bump!(1);
                }
            }
            continue;
        }

        // Identifiers and keywords (incl. r#raw idents, handled above).
        if is_ident_start(c) {
            let (tok_line, tok_col) = (line, col);
            let mut text = String::new();
            while i < chars.len() && is_ident_continue(chars[i]) {
                text.push(chars[i]);
                bump!(1);
            }
            tokens.push(Token {
                line: tok_line,
                col: tok_col,
                text,
                kind: TokKind::Ident,
                in_test: false,
            });
            continue;
        }

        // Numbers: `1.5e-3` hangs together; `0..10` must not swallow the
        // range dots. The text is retained so the taint layer can type
        // `0.5` / `1f64` as float literals.
        if c.is_ascii_digit() {
            let (tok_line, tok_col) = (line, col);
            let mut text = String::new();
            while i < chars.len() {
                let d = chars[i];
                if is_ident_continue(d) {
                    let was_exp = d == 'e' || d == 'E';
                    text.push(d);
                    bump!(1);
                    if was_exp
                        && (chars.get(i) == Some(&'+') || chars.get(i) == Some(&'-'))
                        && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                    {
                        text.push(chars[i]);
                        bump!(1);
                    }
                } else if d == '.' && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                    text.push(d);
                    bump!(1);
                } else {
                    break;
                }
            }
            tokens.push(Token {
                line: tok_line,
                col: tok_col,
                text,
                kind: TokKind::Literal,
                in_test: false,
            });
            continue;
        }

        // `::` merged into a single token for readable path patterns.
        if c == ':' && next == Some(':') {
            tokens.push(Token {
                line,
                col,
                text: "::".into(),
                kind: TokKind::Punct,
                in_test: false,
            });
            bump!(2);
            continue;
        }

        // Everything else: single-char punctuation.
        tokens.push(Token {
            line,
            col,
            text: c.to_string(),
            kind: TokKind::Punct,
            in_test: false,
        });
        bump!(1);
    }
    tokens
}

/// Whether position `i` (at an `r`/`b`) starts a raw or byte string.
fn raw_string_lookahead(chars: &[char], i: usize) -> bool {
    let mut j = i;
    while chars.get(j) == Some(&'r') || chars.get(j) == Some(&'b') {
        j += 1;
        if j - i > 2 {
            return false;
        }
    }
    match chars.get(j) {
        Some('"') => true,
        Some('#') => {
            let mut k = j;
            while chars.get(k) == Some(&'#') {
                k += 1;
            }
            chars.get(k) == Some(&'"')
        }
        _ => false,
    }
}

/// Consumes the body of a char literal after the opening quote.
fn consume_char_literal_body(chars: &[char], i: &mut usize, line: &mut u32, col: &mut u32) {
    let bump = |i: &mut usize, line: &mut u32, col: &mut u32| {
        if *i < chars.len() {
            if chars[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        }
    };
    while *i < chars.len() {
        if chars[*i] == '\\' {
            bump(i, line, col);
            bump(i, line, col);
        } else if chars[*i] == '\'' {
            bump(i, line, col);
            break;
        } else {
            bump(i, line, col);
        }
    }
}

/// Marks tokens belonging to `#[cfg(test)]`-gated items and `#[test]`
/// functions as `in_test`.
///
/// The pass walks the token stream once: on a test-flavoured attribute it
/// arms a pending flag; the next item (everything up to the matching `}`
/// of its body, or up to `;` for bodiless items) is then marked. Nested
/// attributes between the gate and the item (`#[derive]`, `#[allow]`)
/// keep the flag armed.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0usize;
    let mut pending_test = false;
    while i < tokens.len() {
        if tokens[i].is_punct("#") {
            // Attribute: `#` `[` … `]` or `#` `!` `[` … `]`.
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].is_punct("!") {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct("[") {
                let start = j + 1;
                let mut depth = 1usize;
                let mut k = start;
                while k < tokens.len() && depth > 0 {
                    if tokens[k].is_punct("[") {
                        depth += 1;
                    } else if tokens[k].is_punct("]") {
                        depth -= 1;
                    }
                    k += 1;
                }
                if attr_is_test(&tokens[start..k.saturating_sub(1)]) {
                    pending_test = true;
                }
                i = k;
                continue;
            }
        }
        if pending_test && tokens[i].kind == TokKind::Ident {
            // The gated item: scan to its body `{` (or terminating `;`)
            // and mark through the matching close.
            let item_start = i;
            let mut j = i;
            let mut depth = 0isize;
            let mut end = tokens.len();
            while j < tokens.len() {
                if tokens[j].is_punct("{") {
                    depth += 1;
                } else if tokens[j].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                } else if tokens[j].is_punct(";") && depth == 0 {
                    end = j + 1;
                    break;
                } else if tokens[j].is_punct("#") && depth == 0 && j > item_start {
                    // A sibling attribute before any body: stay pending,
                    // restart attr handling from here.
                    break;
                }
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct("#") && depth == 0 {
                i = j;
                continue;
            }
            for t in tokens[item_start..end].iter_mut() {
                t.in_test = true;
            }
            pending_test = false;
            i = end;
            continue;
        }
        i += 1;
    }
}

/// Whether an attribute's token body gates test code: `test`,
/// `cfg(test)`, or a path ending in `::test` — but not `cfg(not(test))`.
fn attr_is_test(body: &[Token]) -> bool {
    if body.is_empty() {
        return false;
    }
    // `#[test]` / `#[tokio::test]`: last path segment is `test` and the
    // attribute is just a path.
    if body
        .iter()
        .all(|t| t.kind == TokKind::Ident || t.is_punct("::"))
        && body.last().is_some_and(|t| t.is_ident("test"))
    {
        return true;
    }
    // `#[cfg(test)]` and `#[cfg(all(test, …))]`: `test` appears directly
    // inside a `cfg(..)` with no `not(` wrapper in front of it.
    if body.first().is_some_and(|t| t.is_ident("cfg")) {
        let mut not_depth: Vec<usize> = Vec::new();
        let mut depth = 0usize;
        let mut prev_ident: Option<&str> = None;
        for t in body {
            if t.is_punct("(") {
                depth += 1;
                if prev_ident == Some("not") {
                    not_depth.push(depth);
                }
            } else if t.is_punct(")") {
                if not_depth.last() == Some(&depth) {
                    not_depth.pop();
                }
                depth = depth.saturating_sub(1);
            } else if t.is_ident("test") && not_depth.is_empty() {
                return true;
            }
            prev_ident = if t.kind == TokKind::Ident {
                Some(t.text.as_str())
            } else {
                None
            };
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(tokens: &[Token]) -> Vec<(&str, bool)> {
        tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text.as_str(), t.in_test))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let toks = lex("let x = \"HashMap\"; // HashMap\n/* HashMap */ let y = 1;");
        assert!(!idents(&toks).iter().any(|(t, _)| *t == "HashMap"));
        assert!(idents(&toks).iter().any(|(t, _)| *t == "y"));
    }

    #[test]
    fn raw_strings_and_chars_are_stripped() {
        let toks =
            lex("let s = r#\"HashMap \"quoted\" text\"#; let c = 'H'; let l: &'a str = \"\";");
        assert!(!idents(&toks).iter().any(|(t, _)| *t == "HashMap"));
        // The lifetime label is skipped entirely, not mistaken for a char.
        assert!(!idents(&toks).iter().any(|(t, _)| *t == "a"));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}";
        let toks = lex(src);
        let ids = idents(&toks);
        assert!(ids.contains(&("live", false)));
        assert!(ids.contains(&("helper", true)));
        assert!(ids.contains(&("after", false)));
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let toks = lex("#[cfg(not(test))]\nfn live() { let m = 1; }");
        assert!(idents(&toks).contains(&("live", false)));
    }

    #[test]
    fn test_fn_attribute_is_marked() {
        let toks = lex("#[test]\nfn check() { body(); }\nfn live() {}");
        let ids = idents(&toks);
        assert!(ids.contains(&("body", true)));
        assert!(ids.contains(&("live", false)));
    }

    #[test]
    fn intervening_attributes_keep_the_gate_armed() {
        let toks = lex("#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn inner() {} }");
        assert!(idents(&toks).contains(&("inner", true)));
    }

    #[test]
    fn path_separator_is_merged() {
        let toks = lex("std::time::Instant::now()");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["std", "::", "time", "::", "Instant", "::", "now", "(", ")"]
        );
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let toks = lex("for i in 0..10 { x(1.5e-3); }");
        assert!(toks.iter().any(|t| t.is_punct(".")));
        assert!(idents(&toks).iter().any(|(t, _)| *t == "x"));
        // Float literal text survives for the taint layer.
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "1.5e-3"));
    }

    #[test]
    fn string_content_is_retained_but_not_an_ident() {
        let toks = lex("named(seed, \"task/alpha\"); let r = r#\"raw/label\"#;");
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["task/alpha", "raw/label"]);
        assert!(!idents(&toks).iter().any(|(t, _)| t.contains("task")));
    }

    #[test]
    fn simlint_directive_comments_are_captured() {
        let src = "\
fn f() {\n    // simlint::allow(T1/rng-stream-aliasing): label embeds the task id\n    let x = 1; // simlint::allow(D1/hash-collections): scratch only\n    // an ordinary comment mentioning simlint stays stripped\n}";
        let (_, comments) = lex_with_comments(src);
        assert_eq!(comments.len(), 2);
        assert!(!comments[0].trailing);
        assert_eq!(comments[0].line, 2);
        assert!(comments[0].text.starts_with("simlint::allow(T1"));
        assert!(comments[1].trailing);
        assert_eq!(comments[1].line, 3);
    }

    #[test]
    fn doc_comments_quoting_the_grammar_are_not_directives() {
        let (_, comments) = lex_with_comments(
            "/// use `// simlint::allow(<rule>): <reason>` to suppress\nfn f() {}",
        );
        assert!(comments.is_empty());
    }
}
