//! A lightweight item parser on top of the [`crate::lexer`] token
//! stream: just enough structure for whole-workspace symbol resolution.
//!
//! The parser extracts, per file:
//!
//! * function definitions — free functions, inherent methods, trait
//!   methods (including defaulted bodies) — with their parameter types,
//!   generic trait bounds and every call site in the body;
//! * struct definitions with field → type-head mappings, so a method
//!   receiver like `self.rm` can be typed;
//! * `impl Trait for Type` relations, so calls through a generic
//!   `S: PlanSubstrate` bound resolve to every implementation;
//! * inline `mod` nesting (walked transparently — symbol resolution in
//!   SimDC is by bare name within crate/workspace scope, which matches
//!   how the sim crates actually import things).
//!
//! Like the lexer this is deliberately *not* a full Rust parser: no
//! expressions, no patterns beyond `ident: Type` parameters, no macro
//! expansion. Types are reduced to their *head* — the last path segment
//! before any generic arguments, with references, `mut`, `dyn` and
//! `impl` stripped — because the rules only need nominal identity
//! (`Vec`, `PhoneMgr`, `ResourceManager`), never full type checking.
//! Test-gated tokens (`in_test`) are skipped wholesale: the purity rules
//! police simulation code, not its tests.

use crate::dataflow::{extract_body, ArgInfo, Flow, LoopSpan, Sources};
use crate::lexer::{lex, TokKind, Token};

/// Everything the symbol table needs from one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// Every non-test function with a body (plus bodiless trait-method
    /// declarations, which carry no calls).
    pub fns: Vec<FnDef>,
    /// Struct definitions with named fields.
    pub structs: Vec<StructDef>,
    /// Trait definitions (name + method names).
    pub traits: Vec<TraitDef>,
    /// `impl Trait for Type` relations found in this file.
    pub trait_impls: Vec<TraitImpl>,
}

/// One function definition.
#[derive(Debug)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The inherent-impl or trait type this is a method of, if any.
    /// For `impl Trait for Type` methods this is `Type`; for defaulted
    /// trait methods it is the trait's name.
    pub owner: Option<String>,
    /// The trait implemented by the enclosing `impl`, if any.
    pub trait_impl: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// `(name, type-head)` for simple `ident: Type` parameters.
    pub params: Vec<(String, String)>,
    /// Generic parameter → trait-bound heads, from `<S: Trait>` lists
    /// and simple `where S: Trait` clauses.
    pub bounds: Vec<(String, Vec<String>)>,
    /// Local binding name → type head: the params plus every `let`
    /// whose annotation, `Type::ctor(..)` initialiser, float literal or
    /// `as f32/f64` cast reveals a type.
    pub locals: std::collections::BTreeMap<String, String>,
    /// Every call site in the body, in source order.
    pub calls: Vec<CallSite>,
    /// The return type's head, if annotated.
    pub ret_type: Option<String>,
    /// Every `let` initialiser and assignment, in source order.
    pub flows: Vec<Flow>,
    /// The sources of every `return` statement plus the tail expression.
    pub rets: Vec<Sources>,
    /// Every `for` loop, in source order.
    pub loops: Vec<LoopSpan>,
}

impl FnDef {
    /// Display name for diagnostics: `Owner::name` or bare `name`.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A struct definition with named fields.
#[derive(Debug)]
pub struct StructDef {
    /// The struct's name.
    pub name: String,
    /// `(field, type-head)` pairs.
    pub fields: Vec<(String, String)>,
}

/// A trait definition.
#[derive(Debug)]
pub struct TraitDef {
    /// The trait's name.
    pub name: String,
    /// Its method names (defaulted or declared).
    pub methods: Vec<String>,
}

/// One `impl Trait for Type` relation.
#[derive(Debug)]
pub struct TraitImpl {
    /// The trait implemented.
    pub trait_name: String,
    /// The implementing type's head.
    pub type_name: String,
}

/// One call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// 1-based line of the callee name token.
    pub line: u32,
    /// 1-based column of the callee name token.
    pub col: u32,
    /// What is being called, and how.
    pub callee: Callee,
    /// Token index of the callee name (for span-containment tests).
    pub tok: usize,
    /// Per-argument sources and constant-string shapes.
    pub args: Vec<ArgInfo>,
    /// The `::<T>` turbofish type head, if present (`f64` in
    /// `.sum::<f64>()`).
    pub turbofish: Option<String>,
    /// For method calls: the base of the dot-chain (`weights` in
    /// `self.weights.values().sum()`), as far as tokens reveal it.
    pub base: Option<Receiver>,
}

impl CallSite {
    /// The simple (last-segment) name of the callee.
    pub fn name(&self) -> &str {
        match &self.callee {
            Callee::Free(n) => n,
            Callee::Path(segs) => segs.last().map(String::as_str).unwrap_or(""),
            Callee::Method { name, .. } => name,
        }
    }

    /// The identifier immediately before the final `.` for method calls
    /// (`rm` in both `rm.release(..)` and `self.rm.release(..)`), used
    /// by receiver-name sink specs.
    pub fn prev_ident(&self) -> Option<&str> {
        match &self.callee {
            Callee::Method { recv, .. } => recv.last_ident(),
            _ => None,
        }
    }
}

/// The shape of a call site.
#[derive(Debug)]
pub enum Callee {
    /// `foo(..)` — a free-function call (or tuple-struct construction).
    Free(String),
    /// `a::b::foo(..)` — a path call; segments include the final name.
    Path(Vec<String>),
    /// `recv.foo(..)` — a method call.
    Method {
        /// The method name.
        name: String,
        /// What it is called on.
        recv: Receiver,
    },
}

/// A method call's receiver, as much as the token stream reveals.
#[derive(Debug, Clone)]
pub enum Receiver {
    /// `self.method(..)`.
    SelfValue,
    /// `self.field.method(..)` — typed through the owner's field.
    SelfField(String),
    /// `ident.method(..)` — typed through params or local `let`s.
    Ident(String),
    /// Anything else (call results, indexing, long chains). Retains the
    /// identifier just before the dot, if any, for receiver-name specs.
    Opaque(Option<String>),
}

impl Receiver {
    /// The identifier just before the dot, if any.
    pub fn last_ident(&self) -> Option<&str> {
        match self {
            Receiver::SelfValue => Some("self"),
            Receiver::SelfField(f) => Some(f),
            Receiver::Ident(i) => Some(i),
            Receiver::Opaque(last) => last.as_deref(),
        }
    }
}

/// Rust keywords that look like call names when followed by `(`.
pub(crate) const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "move",
    "ref", "mut", "let", "fn", "impl", "dyn", "as", "where", "pub", "use", "mod", "struct", "enum",
    "trait", "const", "static", "type", "unsafe", "extern", "crate", "super", "self", "Self",
];

/// Parses one file into its item skeleton.
pub fn parse_file(path: &str, source: &str) -> ParsedFile {
    let tokens = lex(source);
    let mut out = ParsedFile {
        path: path.to_string(),
        ..ParsedFile::default()
    };
    parse_items(&tokens, 0, tokens.len(), None, &mut out);
    out
}

/// The impl/trait context a `fn` is parsed under.
#[derive(Clone)]
struct OwnerCtx {
    owner: String,
    trait_impl: Option<String>,
}

/// Walks `tokens[start..end]` for item definitions, recursing into
/// `mod`/`impl`/`trait` bodies.
fn parse_items(
    tokens: &[Token],
    start: usize,
    end: usize,
    owner: Option<&OwnerCtx>,
    out: &mut ParsedFile,
) {
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.in_test {
            i += 1;
            continue;
        }
        if t.is_ident("impl") {
            i = parse_impl(tokens, i, end, out);
        } else if t.is_ident("trait") {
            i = parse_trait(tokens, i, end, out);
        } else if t.is_ident("mod") {
            // `mod name { … }` recurses; `mod name;` is a file module
            // (its items are parsed when that file is scanned).
            if let Some(open) = tokens.get(i + 2).filter(|t| t.is_punct("{")) {
                let _ = open;
                let close = match_brace(tokens, i + 2, end);
                parse_items(tokens, i + 3, close, owner, out);
                i = close + 1;
            } else {
                i += 2;
            }
        } else if t.is_ident("struct") {
            i = parse_struct(tokens, i, end, out);
        } else if t.is_ident("fn") {
            i = parse_fn(tokens, i, end, owner, out);
        } else {
            i += 1;
        }
    }
}

/// Finds the index of the `}` matching the `{` at `open`.
pub(crate) fn match_brace(tokens: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < end {
        if tokens[i].is_punct("{") {
            depth += 1;
        } else if tokens[i].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end.saturating_sub(1)
}

/// Skips a balanced `<…>` generic-argument list starting at `i` (which
/// must point at `<`); returns the index just past the closing `>`.
pub(crate) fn skip_angles(tokens: &[Token], i: usize, end: usize) -> usize {
    let mut depth = 0isize;
    let mut j = i;
    while j < end {
        if tokens[j].is_punct("<") {
            depth += 1;
        } else if tokens[j].is_punct(">") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        } else if tokens[j].is_punct("{") || tokens[j].is_punct(";") {
            // Malformed input guard: never scan past an item boundary.
            return j;
        }
        j += 1;
    }
    end
}

/// Reads a type path starting at `i`, returning `(head, next_index)`.
/// The head is the last path segment before any `<…>` arguments;
/// references, `mut`, `dyn`, `impl` and slice brackets are skipped.
pub(crate) fn read_type_head(
    tokens: &[Token],
    mut i: usize,
    end: usize,
) -> (Option<String>, usize) {
    while i < end
        && (tokens[i].is_punct("&")
            || tokens[i].is_punct("*")
            || tokens[i].is_ident("mut")
            || tokens[i].is_ident("const")
            || tokens[i].is_ident("dyn")
            || tokens[i].is_ident("impl")
            || tokens[i].is_punct("["))
    {
        i += 1;
    }
    let mut head: Option<String> = None;
    while i < end {
        let t = &tokens[i];
        if t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
            head = Some(t.text.clone());
            i += 1;
            if i < end && tokens[i].is_punct("::") {
                i += 1;
                continue;
            }
            if i < end && tokens[i].is_punct("<") {
                i = skip_angles(tokens, i, end);
            }
            break;
        }
        break;
    }
    (head, i)
}

/// Parses an `impl` block header + body; returns the index past the body.
fn parse_impl(tokens: &[Token], at: usize, end: usize, out: &mut ParsedFile) -> usize {
    let mut i = at + 1;
    if i < end && tokens[i].is_punct("<") {
        i = skip_angles(tokens, i, end);
    }
    let (first, after_first) = read_type_head(tokens, i, end);
    i = after_first;
    // Skip any residual generic punctuation up to `for` / `where` / `{`.
    while i < end
        && !tokens[i].is_ident("for")
        && !tokens[i].is_ident("where")
        && !tokens[i].is_punct("{")
        && !tokens[i].is_punct(";")
    {
        i += 1;
    }
    let (trait_name, type_name) = if i < end && tokens[i].is_ident("for") {
        let (second, after_second) = read_type_head(tokens, i + 1, end);
        i = after_second;
        (first, second)
    } else {
        (None, first)
    };
    // Skip `where` clauses to the body.
    while i < end && !tokens[i].is_punct("{") && !tokens[i].is_punct(";") {
        i += 1;
    }
    if i >= end || tokens[i].is_punct(";") {
        return i + 1;
    }
    let close = match_brace(tokens, i, end);
    if let Some(type_name) = type_name {
        if let Some(trait_name) = trait_name.clone() {
            out.trait_impls.push(TraitImpl {
                trait_name,
                type_name: type_name.clone(),
            });
        }
        let ctx = OwnerCtx {
            owner: type_name,
            trait_impl: trait_name,
        };
        parse_items(tokens, i + 1, close, Some(&ctx), out);
    }
    close + 1
}

/// Parses a `trait` definition; returns the index past the body.
fn parse_trait(tokens: &[Token], at: usize, end: usize, out: &mut ParsedFile) -> usize {
    let Some(name_tok) = tokens.get(at + 1).filter(|t| t.kind == TokKind::Ident) else {
        return at + 1;
    };
    let name = name_tok.text.clone();
    let mut i = at + 2;
    while i < end && !tokens[i].is_punct("{") && !tokens[i].is_punct(";") {
        i += 1;
    }
    if i >= end || tokens[i].is_punct(";") {
        return i + 1;
    }
    let close = match_brace(tokens, i, end);
    let before = out.fns.len();
    let ctx = OwnerCtx {
        owner: name.clone(),
        trait_impl: None,
    };
    parse_items(tokens, i + 1, close, Some(&ctx), out);
    let methods = out.fns[before..].iter().map(|f| f.name.clone()).collect();
    out.traits.push(TraitDef { name, methods });
    close + 1
}

/// Parses a `struct` definition; returns the index past it.
fn parse_struct(tokens: &[Token], at: usize, end: usize, out: &mut ParsedFile) -> usize {
    let Some(name_tok) = tokens.get(at + 1).filter(|t| t.kind == TokKind::Ident) else {
        return at + 1;
    };
    let name = name_tok.text.clone();
    let mut i = at + 2;
    if i < end && tokens[i].is_punct("<") {
        i = skip_angles(tokens, i, end);
    }
    while i < end
        && !tokens[i].is_punct("{")
        && !tokens[i].is_punct(";")
        && !tokens[i].is_punct("(")
    {
        i += 1;
    }
    if i >= end {
        return end;
    }
    if tokens[i].is_punct(";") {
        return i + 1;
    }
    if tokens[i].is_punct("(") {
        // Tuple struct: skip to the terminating `;`.
        while i < end && !tokens[i].is_punct(";") {
            i += 1;
        }
        return i + 1;
    }
    let close = match_brace(tokens, i, end);
    let mut fields = Vec::new();
    let mut j = i + 1;
    while j < close {
        // Field: `[pub[(..)]] name : Type [,]` at struct-body depth.
        if tokens[j].is_ident("pub") {
            j += 1;
            if j < close && tokens[j].is_punct("(") {
                while j < close && !tokens[j].is_punct(")") {
                    j += 1;
                }
                j += 1;
            }
            continue;
        }
        if tokens[j].is_punct("#") {
            // Field attribute `#[…]`: skip.
            j += 1;
            if j < close && tokens[j].is_punct("[") {
                let mut depth = 0isize;
                while j < close {
                    if tokens[j].is_punct("[") {
                        depth += 1;
                    } else if tokens[j].is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            continue;
        }
        if tokens[j].kind == TokKind::Ident
            && tokens.get(j + 1).is_some_and(|t| t.is_punct(":"))
            && !tokens[j].in_test
        {
            let field = tokens[j].text.clone();
            let (head, after) = read_type_head(tokens, j + 2, close);
            if let Some(head) = head {
                fields.push((field, head));
            }
            // Advance to the field-separating comma at field depth.
            j = after;
            let mut depth = 0isize;
            while j < close {
                let t = &tokens[j];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") || t.is_punct("<") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") || t.is_punct(">") {
                    depth -= 1;
                } else if t.is_punct(",") && depth <= 0 {
                    j += 1;
                    break;
                }
                j += 1;
            }
            continue;
        }
        j += 1;
    }
    out.structs.push(StructDef { name, fields });
    close + 1
}

/// Parses a `fn` item (signature + body calls); returns the index past it.
fn parse_fn(
    tokens: &[Token],
    at: usize,
    end: usize,
    owner: Option<&OwnerCtx>,
    out: &mut ParsedFile,
) -> usize {
    let Some(name_tok) = tokens.get(at + 1).filter(|t| t.kind == TokKind::Ident) else {
        return at + 1;
    };
    if name_tok.in_test {
        // Test-gated function: skip its whole extent.
        let mut j = at;
        while j < end && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
            j += 1;
        }
        if j < end && tokens[j].is_punct("{") {
            return match_brace(tokens, j, end) + 1;
        }
        return j + 1;
    }
    let name = name_tok.text.clone();
    let mut def = FnDef {
        name,
        owner: owner.map(|c| c.owner.clone()),
        trait_impl: owner.and_then(|c| c.trait_impl.clone()),
        line: tokens[at].line,
        col: tokens[at].col,
        params: Vec::new(),
        bounds: Vec::new(),
        locals: std::collections::BTreeMap::new(),
        calls: Vec::new(),
        ret_type: None,
        flows: Vec::new(),
        rets: Vec::new(),
        loops: Vec::new(),
    };
    let mut i = at + 2;
    if i < end && tokens[i].is_punct("<") {
        let generics_end = skip_angles(tokens, i, end);
        parse_bounds(tokens, i + 1, generics_end.saturating_sub(1), &mut def);
        i = generics_end;
    }
    // Parameter list.
    if i < end && tokens[i].is_punct("(") {
        let params_end = match_paren(tokens, i, end);
        parse_params(tokens, i + 1, params_end, &mut def);
        i = params_end + 1;
    }
    // Return type and where clause: scan to the body `{` or `;`,
    // picking up the `-> Type` head and simple `where S: Trait` bounds
    // on the way.
    let mut j = i;
    while j < end && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
        if tokens[j].is_ident("where") {
            parse_bounds(tokens, j + 1, body_or_semi(tokens, j + 1, end), &mut def);
        }
        if def.ret_type.is_none()
            && tokens[j].is_punct("-")
            && tokens.get(j + 1).is_some_and(|t| t.is_punct(">"))
        {
            let (head, _) = read_type_head(tokens, j + 2, body_or_semi(tokens, j + 2, end));
            def.ret_type = head;
        }
        j += 1;
    }
    if j >= end {
        out.fns.push(def);
        return end;
    }
    if tokens[j].is_punct(";") {
        // Bodiless trait-method declaration.
        out.fns.push(def);
        return j + 1;
    }
    let close = match_brace(tokens, j, end);
    extract_body(tokens, j + 1, close, &mut def);
    out.fns.push(def);
    close + 1
}

/// Index of the first `{` or `;` at or after `i`.
fn body_or_semi(tokens: &[Token], i: usize, end: usize) -> usize {
    let mut j = i;
    while j < end && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
        j += 1;
    }
    j
}

/// Finds the index of the `)` matching the `(` at `open`.
pub(crate) fn match_paren(tokens: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < end {
        if tokens[i].is_punct("(") {
            depth += 1;
        } else if tokens[i].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end.saturating_sub(1)
}

/// Collects `Ident : Bound (+ Bound)*` pairs from a generics list or a
/// where clause (`tokens[start..end]`). Only single-ident subjects are
/// recorded — `Vec<T>: …` projections are beyond nominal resolution.
fn parse_bounds(tokens: &[Token], start: usize, end: usize, def: &mut FnDef) {
    let mut i = start;
    let mut depth = 0isize;
    while i < end {
        let t = &tokens[i];
        if t.is_punct("<") || t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(">") || t.is_punct(")") {
            depth -= 1;
        } else if depth == 0
            && t.kind == TokKind::Ident
            && !KEYWORDS.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(":"))
        {
            let subject = t.text.clone();
            let mut bounds = Vec::new();
            let mut j = i + 2;
            loop {
                let (head, after) = read_type_head(tokens, j, end);
                match head {
                    Some(h) => bounds.push(h),
                    None => break,
                }
                j = after;
                if j < end && tokens[j].is_punct("+") {
                    j += 1;
                    continue;
                }
                break;
            }
            if !bounds.is_empty() {
                // A `where` clause can re-bound a parameter from the
                // angle list; merge instead of shadowing.
                match def.bounds.iter_mut().find(|(p, _)| *p == subject) {
                    Some((_, existing)) => existing.extend(bounds),
                    None => def.bounds.push((subject, bounds)),
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

/// Parses `ident: Type` parameters from `tokens[start..end]` (the
/// contents of the signature parens). Splits at top-level commas; `self`
/// receivers and destructuring patterns are skipped.
fn parse_params(tokens: &[Token], start: usize, end: usize, def: &mut FnDef) {
    let mut param_start = start;
    let mut depth = 0isize;
    let mut i = start;
    while i <= end {
        let at_end = i == end;
        let is_split = at_end || (depth == 0 && tokens[i].is_punct(","));
        if !at_end {
            let t = &tokens[i];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct(">") && depth > 0 {
                // `->` in an `impl Fn() -> R` param lexes as `-` `>`;
                // only close an angle that is actually open.
                depth -= 1;
            }
        }
        if is_split {
            parse_one_param(tokens, param_start, i, def);
            param_start = i + 1;
            if at_end {
                break;
            }
        }
        i += 1;
    }
}

/// Parses one `pattern: Type` parameter into a `(name, type)` entry.
/// Parameters that resist parsing (destructuring patterns, untyped
/// heads) get an anonymous placeholder so the parameter *indices* stay
/// aligned with call-site argument positions — the taint summaries
/// depend on that alignment. `self` receivers are skipped outright,
/// since argument lists do not carry them.
fn parse_one_param(tokens: &[Token], start: usize, end: usize, def: &mut FnDef) {
    let mut i = start;
    while i < end && (tokens[i].is_punct("&") || tokens[i].is_ident("mut")) {
        i += 1;
    }
    if i >= end {
        return;
    }
    if tokens[i].is_ident("self") {
        return;
    }
    if tokens[i].kind == TokKind::Ident
        && !KEYWORDS.contains(&tokens[i].text.as_str())
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(":"))
    {
        let name = tokens[i].text.clone();
        let (head, _) = read_type_head(tokens, i + 2, end);
        if let Some(head) = head {
            def.params.push((name, head));
            return;
        }
    }
    def.params.push(("_".to_string(), String::new()));
}

/// For `let x = Vec::with_capacity(..)`-style initialisers: the type
/// head (`Vec`) if the RHS starts with an uppercase path.
pub(crate) fn ctor_type_head(tokens: &[Token], i: usize, end: usize) -> Option<String> {
    let t = tokens.get(i).filter(|t| t.kind == TokKind::Ident)?;
    if i >= end || !t.text.chars().next().is_some_and(char::is_uppercase) {
        return None;
    }
    // Walk the path; the type is the segment *before* the final
    // lowercase constructor name, or the first segment for `Type { … }`.
    let mut segs: Vec<String> = vec![t.text.clone()];
    let mut j = i + 1;
    while j + 1 < end && tokens[j].is_punct("::") && tokens[j + 1].kind == TokKind::Ident {
        segs.push(tokens[j + 1].text.clone());
        j += 2;
    }
    let last_is_fn = segs
        .last()
        .is_some_and(|s| s.chars().next().is_some_and(char::is_lowercase));
    if last_is_fn && segs.len() >= 2 {
        return Some(segs[segs.len() - 2].clone());
    }
    if !last_is_fn {
        return Some(segs[segs.len() - 1].clone());
    }
    None
}

/// Builds a `Callee::Method` for the name token at `i` (preceded by `.`).
pub(crate) fn method_callee(tokens: &[Token], i: usize) -> Callee {
    let name = tokens[i].text.clone();
    // Walk the receiver chain left of the dot: `ident (. ident)*`.
    let dot = i - 1;
    let mut chain: Vec<String> = Vec::new();
    let mut j = dot;
    while let Some(prev) = j.checked_sub(1).map(|p| &tokens[p]) {
        if (prev.kind == TokKind::Ident && !KEYWORDS.contains(&prev.text.as_str()))
            || prev.is_ident("self")
        {
            chain.push(prev.text.clone());
            // Continue only through `ident .` links.
            match j.checked_sub(2).map(|p| &tokens[p]) {
                Some(p2) if p2.is_punct(".") => {
                    j -= 2;
                    continue;
                }
                _ => break,
            }
        }
        break;
    }
    chain.reverse();
    let recv = match chain.as_slice() {
        [one] if one == "self" => Receiver::SelfValue,
        [first, field] if first == "self" => Receiver::SelfField(field.clone()),
        [one] => Receiver::Ident(one.clone()),
        [] => Receiver::Opaque(None),
        rest => Receiver::Opaque(rest.last().cloned()),
    };
    Callee::Method { name, recv }
}

/// Builds a `Callee::Path` for the name token at `i` (preceded by `::`).
pub(crate) fn path_callee(tokens: &[Token], i: usize) -> Callee {
    let mut segs: Vec<String> = vec![tokens[i].text.clone()];
    let mut j = i - 1; // at `::`
    while tokens[j].is_punct("::") {
        let Some(prev) = j.checked_sub(1).map(|p| &tokens[p]) else {
            break;
        };
        if prev.kind == TokKind::Ident {
            segs.push(prev.text.clone());
            match j.checked_sub(2) {
                Some(p) if tokens[p].is_punct("::") => j = p,
                _ => break,
            }
        } else if prev.is_punct(">") {
            // Turbofish or qualified path: give up on deeper segments.
            break;
        } else {
            break;
        }
    }
    segs.reverse();
    Callee::Path(segs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/x/src/lib.rs", src)
    }

    fn fn_named<'a>(file: &'a ParsedFile, display: &str) -> &'a FnDef {
        file.fns
            .iter()
            .find(|f| f.display() == display)
            .unwrap_or_else(|| panic!("no fn `{display}` in {:?}", file.fns))
    }

    #[test]
    fn walks_nested_mods_transparently() {
        let file = parse(
            "mod outer {\n    pub mod inner {\n        pub fn deep() { helper(); }\n    }\n}\nfn helper() {}\n",
        );
        let names: Vec<String> = file.fns.iter().map(FnDef::display).collect();
        assert_eq!(names, vec!["deep", "helper"]);
        let deep = fn_named(&file, "deep");
        assert_eq!(deep.calls.len(), 1);
        assert!(matches!(&deep.calls[0].callee, Callee::Free(n) if n == "helper"));
        // Position is the `fn` keyword of the nested item.
        assert_eq!((deep.line, deep.col), (3, 13));
    }

    #[test]
    fn trait_impls_and_defaulted_methods() {
        let file = parse(
            "trait Plan {\n    fn go(&self);\n    fn both(&self) { self.go(); }\n}\nstruct A {}\nimpl Plan for A {\n    fn go(&self) { step(); }\n}\nfn step() {}\n",
        );
        let plan = &file.traits[0];
        assert_eq!(plan.name, "Plan");
        assert_eq!(plan.methods, vec!["go", "both"]);
        // Defaulted trait method is owned by the trait; the impl method
        // by the implementing type, with the trait recorded.
        let both = fn_named(&file, "Plan::both");
        assert!(both.trait_impl.is_none());
        let go = fn_named(&file, "A::go");
        assert_eq!(go.trait_impl.as_deref(), Some("Plan"));
        assert_eq!(file.trait_impls.len(), 1);
        assert_eq!(file.trait_impls[0].trait_name, "Plan");
        assert_eq!(file.trait_impls[0].type_name, "A");
    }

    #[test]
    fn generic_bounds_from_angle_list_and_where_clause() {
        let file = parse(
            "fn drive<S: Plan + Send>(s: &mut S, n: u64) -> u64\nwhere\n    S: Clone,\n{\n    s.go();\n    n\n}\n",
        );
        let drive = fn_named(&file, "drive");
        assert_eq!(
            drive.params,
            vec![
                ("s".to_string(), "S".to_string()),
                ("n".to_string(), "u64".to_string())
            ]
        );
        let s_bounds = drive
            .bounds
            .iter()
            .find(|(p, _)| p == "S")
            .map(|(_, b)| b.clone())
            .expect("S has bounds");
        assert!(s_bounds.contains(&"Plan".to_string()), "{s_bounds:?}");
        assert!(s_bounds.contains(&"Clone".to_string()), "{s_bounds:?}");
        assert!(matches!(
            &drive.calls[0].callee,
            Callee::Method { name, recv: Receiver::Ident(r) } if name == "go" && r == "s"
        ));
    }

    #[test]
    fn method_receivers_and_let_typed_locals() {
        let file = parse(
            "struct W { rm: R }\nimpl W {\n    fn f(&mut self, id: u64) {\n        let q = Queue::new();\n        q.append(id);\n        self.rm.release(id);\n        self.tick();\n        mystery().run();\n    }\n}\n",
        );
        let f = fn_named(&file, "W::f");
        assert_eq!(f.locals.get("q").map(String::as_str), Some("Queue"));
        assert_eq!(f.locals.get("id").map(String::as_str), Some("u64"));
        assert_eq!(
            file.structs[0].fields,
            vec![("rm".to_string(), "R".to_string())]
        );

        let shapes: Vec<String> = f.calls.iter().map(|c| format!("{:?}", c.callee)).collect();
        assert!(matches!(&f.calls[0].callee, Callee::Path(segs) if segs == &["Queue", "new"]));
        assert!(matches!(
            &f.calls[1].callee,
            Callee::Method { name, recv: Receiver::Ident(r) } if name == "append" && r == "q"
        ));
        assert!(
            matches!(
                &f.calls[2].callee,
                Callee::Method { name, recv: Receiver::SelfField(fld) } if name == "release" && fld == "rm"
            ),
            "{shapes:?}"
        );
        assert_eq!(f.calls[2].prev_ident(), Some("rm"));
        assert!(matches!(
            &f.calls[3].callee,
            Callee::Method { name, recv: Receiver::SelfValue } if name == "tick"
        ));
        // `mystery()` is itself a call; its `.run()` receiver is opaque.
        assert!(matches!(&f.calls[4].callee, Callee::Free(n) if n == "mystery"));
        assert!(matches!(
            &f.calls[5].callee,
            Callee::Method { name, recv: Receiver::Opaque(None) } if name == "run"
        ));
    }

    #[test]
    fn test_gated_code_is_invisible() {
        let file = parse(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { live(); }\n    #[test]\n    fn t() { helper(); }\n}\n",
        );
        let names: Vec<String> = file.fns.iter().map(FnDef::display).collect();
        assert_eq!(names, vec!["live"]);
    }

    #[test]
    fn macro_invocations_and_keywords_are_not_calls() {
        let file = parse(
            "fn f(x: u64) -> u64 {\n    assert!(x > 0);\n    if x > 1 { return x; }\n    let v = vec![x];\n    v.len() as u64\n}\n",
        );
        let f = fn_named(&file, "f");
        let names: Vec<&str> = f.calls.iter().map(CallSite::name).collect();
        assert_eq!(names, vec!["len"], "macros/keywords must not register");
    }
}
