//! CLI entry point: `cargo run -p simdc-simlint --release -- --workspace`.

use std::path::PathBuf;
use std::process::ExitCode;

use simdc_simlint::{find_workspace_root, lint_workspace, render_json, render_sarif, Config};

const USAGE: &str =
    "usage: simlint --workspace [--root DIR] [--config FILE] [--format FMT] [--write-baseline]

Lints the SimDC workspace for determinism & invariant violations.
  --workspace        scan the whole workspace (required; explicit by design)
  --root DIR         workspace root (default: walk up from the current dir)
  --config FILE      simlint.toml to use (default: <root>/simlint.toml)
  --format FMT       `text` (default), `json` or `sarif` — machine formats
                     print the findings document to stdout (the summary
                     goes to stderr) for CI archiving and baseline diffing
  --write-baseline   atomically regenerate <root>/simlint-baseline.json
                     from this scan (exit code still reflects findings)";

/// Diagnostic output formats.
#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--write-baseline" => write_baseline = true,
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage_error("--config needs a value"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some(other) => {
                    return usage_error(&format!("unknown format `{other}` (text|json|sarif)"))
                }
                None => return usage_error("--format needs a value"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage_error("pass --workspace to scan the workspace");
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => return fatal(&format!("cannot determine working directory: {e}")),
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => return fatal("no workspace root found above the current directory"),
            }
        }
    };

    let config = match config_path {
        Some(p) => match std::fs::read_to_string(&p) {
            Ok(text) => match Config::parse(&text) {
                Ok(c) => c,
                Err(e) => return fatal(&e.to_string()),
            },
            Err(e) => return fatal(&format!("read {}: {e}", p.display())),
        },
        None => match Config::load(&root) {
            Ok(c) => c,
            Err(e) => return fatal(&e.to_string()),
        },
    };

    let report = match lint_workspace(&root, &config) {
        Ok(r) => r,
        Err(e) => return fatal(&e),
    };
    if write_baseline {
        // Temp-file + rename so a concurrent reader (or an interrupt)
        // never observes a torn baseline.
        let target = root.join("simlint-baseline.json");
        let tmp = root.join("simlint-baseline.json.tmp");
        let doc = render_json(&report.findings);
        if let Err(e) = std::fs::write(&tmp, doc) {
            return fatal(&format!("write {}: {e}", tmp.display()));
        }
        if let Err(e) = std::fs::rename(&tmp, &target) {
            return fatal(&format!("rename to {}: {e}", target.display()));
        }
        eprintln!("simlint: baseline written to {}", target.display());
    }
    let summary = if report.findings.is_empty() {
        format!(
            "simlint: clean ({} files scanned; call graph: {} fns, {} edges)",
            report.files_scanned, report.graph.functions, report.graph.edges
        )
    } else {
        let files: std::collections::BTreeSet<&str> =
            report.findings.iter().map(|f| f.path.as_str()).collect();
        format!(
            "simlint: {} finding(s) in {} file(s) ({} files scanned; call graph: {} fns, {} edges)",
            report.findings.len(),
            files.len(),
            report.files_scanned,
            report.graph.functions,
            report.graph.edges
        )
    };
    match format {
        Format::Text => {
            for finding in &report.findings {
                println!("{finding}");
            }
            println!("{summary}");
        }
        Format::Json | Format::Sarif => {
            // Findings document to stdout (redirectable to simlint.json /
            // simlint.sarif), human summary to stderr.
            let doc = match format {
                Format::Json => render_json(&report.findings),
                _ => render_sarif(&report.findings),
            };
            print!("{doc}");
            eprintln!("{summary}");
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("simlint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn fatal(msg: &str) -> ExitCode {
    eprintln!("simlint: {msg}");
    ExitCode::from(2)
}
