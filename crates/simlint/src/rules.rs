//! The rule catalog: SimDC's determinism and invariant discipline as
//! checkable properties.
//!
//! | code | rule | what it guards |
//! |------|------|----------------|
//! | `D1/hash-collections` | no `HashMap`/`HashSet` in simulation code | iteration order feeds schedules, summaries and golden fixtures |
//! | `D2/wall-clock` | no `Instant`/`SystemTime` outside harness code | virtual time must come from the event loop |
//! | `D2/ambient-entropy` | no `thread_rng`/`RandomState`/`from_entropy`/`env::var` | all randomness is seeded, all config explicit |
//! | `D3/task-state` | `.state = …` only inside the `mark_*` owner files | terminal-state discipline is an API, not a convention |
//! | `D3/freeze-release` | lease `freeze`/`release` only at pairing points | every freeze must meet its release at the completion event |
//! | `D4/lint-gates` | crate roots carry `deny(missing_docs)` + `forbid(unsafe_code)` | hygiene gates stay on as crates are added |
//! | `D4/unwrap-in-lib` | no `.unwrap()` (and optionally `.expect`) in library code | library panics carry an invariant message or propagate |
//! | `D4/pub-docs` | pub items documented in crates not yet under the doc gate | migration path onto `deny(missing_docs)` |
//!
//! Test-gated code (`#[cfg(test)]`, `#[test]`) is exempt from all rules:
//! the discipline protects simulation behavior, not test scaffolding.

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::{lex, TokKind, Token};

/// Per-file facts the walker supplies alongside the source text.
#[derive(Debug, Clone, Default)]
pub struct FileContext {
    /// Whether this file is a crate root (`src/lib.rs`), where the
    /// hygiene gates must sit.
    pub is_crate_root: bool,
    /// Whether the file's crate already compiles under
    /// `#![deny(missing_docs)]` (then `D4/pub-docs` is redundant —
    /// rustc enforces the stronger property).
    pub crate_has_doc_gate: bool,
}

/// Lints one file; `path` must be workspace-relative with `/` separators.
pub fn lint_file(path: &str, source: &str, ctx: &FileContext, cfg: &Config) -> Vec<Finding> {
    let tokens = lex(source);
    let mut findings = Vec::new();
    let harness = cfg.is_harness(path);

    if !cfg.is_allowed("hash-collections", path) {
        rule_hash_collections(path, &tokens, &mut findings);
    }
    if !harness {
        if !cfg.is_allowed("wall-clock", path) {
            rule_wall_clock(path, &tokens, &mut findings);
        }
        if !cfg.is_allowed("ambient-entropy", path) {
            rule_ambient_entropy(path, &tokens, &mut findings);
        }
    }
    if !cfg.is_allowed("task-state", path) {
        rule_task_state(path, &tokens, ctx, cfg, &mut findings);
    }
    if !cfg.is_allowed("freeze-release", path) {
        rule_freeze_release(path, &tokens, cfg, &mut findings);
    }
    if ctx.is_crate_root && !cfg.is_allowed("lint-gates", path) {
        rule_lint_gates(path, &tokens, &mut findings);
    }
    if !cfg.is_allowed("unwrap-in-lib", path) {
        rule_unwrap(path, &tokens, cfg, &mut findings);
    }
    if !ctx.crate_has_doc_gate && !cfg.is_allowed("pub-docs", path) {
        rule_pub_docs(path, source, &tokens, &mut findings);
    }
    crate::diag::sort_findings(&mut findings);
    findings
}

fn finding(path: &str, tok: &Token, code: &'static str, message: String) -> Finding {
    Finding {
        path: path.to_string(),
        line: tok.line,
        col: tok.col,
        code,
        message,
    }
}

/// D1: unordered hash collections on simulation paths.
fn rule_hash_collections(path: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    for tok in tokens {
        if tok.in_test || tok.kind != TokKind::Ident {
            continue;
        }
        let ordered = match tok.text.as_str() {
            "HashMap" => "BTreeMap",
            "HashSet" => "BTreeSet",
            _ => continue,
        };
        out.push(finding(
            path,
            tok,
            "D1/hash-collections",
            format!(
                "`{}` iterates in hasher order — use `{}` or an ordered index so \
                 same-seed runs stay byte-identical",
                tok.text, ordered
            ),
        ));
    }
}

/// D2: wall-clock time sources.
fn rule_wall_clock(path: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    for tok in tokens {
        if tok.in_test || tok.kind != TokKind::Ident {
            continue;
        }
        if tok.text == "Instant" || tok.text == "SystemTime" {
            out.push(finding(
                path,
                tok,
                "D2/wall-clock",
                format!(
                    "wall-clock `{}` in simulation code — virtual time comes from \
                     `SimInstant` and the event loop (measurement harnesses belong \
                     under a `[workspace] harness` prefix in simlint.toml)",
                    tok.text
                ),
            ));
        }
    }
}

/// D2: ambient entropy and environment-dependent behavior.
fn rule_ambient_entropy(path: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, tok) in tokens.iter().enumerate() {
        if tok.in_test || tok.kind != TokKind::Ident {
            continue;
        }
        match tok.text.as_str() {
            "thread_rng" | "RandomState" | "from_entropy" => {
                out.push(finding(
                    path,
                    tok,
                    "D2/ambient-entropy",
                    format!(
                        "ambient randomness `{}` — seed a deterministic RNG \
                         (`simdc_simrt::SimRng`) explicitly so runs replay",
                        tok.text
                    ),
                ));
            }
            // `env::var` / `std::env::var` — but not the compile-time
            // `env!` macro and not `env::args` (explicit CLI input).
            "env"
                if tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
                    && tokens.get(i + 2).is_some_and(|t| t.is_ident("var")) =>
            {
                out.push(finding(
                    path,
                    tok,
                    "D2/ambient-entropy",
                    "environment-dependent `env::var` — thread configuration \
                     through explicit config structs so behavior is a function \
                     of inputs"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
}

/// D3: direct task-state assignment outside the `mark_*` owner files.
///
/// Only files that reference the lifecycle type (`TaskState` by default)
/// are policed; `state` fields of unrelated types (RNG internals, node
/// lifecycles) keep their name without tripping the rule.
fn rule_task_state(
    path: &str,
    tokens: &[Token],
    _ctx: &FileContext,
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    if cfg.state_owners.iter().any(|o| o == path) {
        return;
    }
    if !tokens
        .iter()
        .any(|t| !t.in_test && t.is_ident(&cfg.state_guard))
    {
        return;
    }
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.in_test || !t.is_ident("state") {
            continue;
        }
        // Pattern: `. state =` with the `=` not part of `==`, `=>`.
        if i == 0 || !tokens[i - 1].is_punct(".") {
            continue;
        }
        let Some(next) = tokens.get(i + 1) else {
            continue;
        };
        if !next.is_punct("=") {
            continue;
        }
        if tokens
            .get(i + 2)
            .is_some_and(|t| t.is_punct("=") || t.is_punct(">"))
        {
            continue;
        }
        out.push(finding(
            path,
            t,
            "D3/task-state",
            format!(
                "task state assigned directly — route the transition through the \
                 `mark_*` APIs ({}) so terminal states stay terminal",
                cfg.state_owners.join(", ")
            ),
        ));
    }
}

/// D3: lease freeze/release outside the plan/commit pairing points.
fn rule_freeze_release(path: &str, tokens: &[Token], cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.lease_callers.iter().any(|c| c == path) {
        return;
    }
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        if !cfg.lease_receivers.iter().any(|r| t.is_ident(r)) {
            continue;
        }
        let (Some(dot), Some(method), Some(paren)) =
            (tokens.get(i + 1), tokens.get(i + 2), tokens.get(i + 3))
        else {
            continue;
        };
        if dot.is_punct(".")
            && (method.is_ident("freeze") || method.is_ident("release"))
            && paren.is_punct("(")
        {
            out.push(finding(
                path,
                method,
                "D3/freeze-release",
                format!(
                    "lease `{}.{}` outside the plan/commit pairing points ({}) — \
                     freezes happen at admission, releases at the completion event, \
                     nowhere else",
                    t.text,
                    method.text,
                    cfg.lease_callers.join(", ")
                ),
            ));
        }
    }
}

/// D4: crate roots must carry both hygiene gates.
fn rule_lint_gates(path: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    let has = |ident: &str| tokens.iter().any(|t| t.is_ident(ident));
    let origin = Token {
        line: 1,
        col: 1,
        text: String::new(),
        kind: TokKind::Punct,
        in_test: false,
    };
    if !(has("deny") && has("missing_docs")) {
        out.push(finding(
            path,
            &origin,
            "D4/lint-gates",
            "crate root lacks `#![deny(missing_docs)]` — every public item must \
             explain itself"
                .to_string(),
        ));
    }
    if !(has("forbid") && has("unsafe_code")) {
        out.push(finding(
            path,
            &origin,
            "D4/lint-gates",
            "crate root lacks `#![forbid(unsafe_code)]` — the simulator is \
             safe-Rust only"
                .to_string(),
        ));
    }
}

/// D4: `.unwrap()` (and, unless relaxed, `.expect(`) in library code.
fn rule_unwrap(path: &str, tokens: &[Token], cfg: &Config, out: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.in_test || !t.is_punct(".") {
            continue;
        }
        let Some(method) = tokens.get(i + 1) else {
            continue;
        };
        if !tokens.get(i + 2).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        if method.is_ident("unwrap") && tokens.get(i + 3).is_some_and(|t| t.is_punct(")")) {
            out.push(finding(
                path,
                method,
                "D4/unwrap-in-lib",
                "`unwrap()` in library code — propagate the error or use \
                 `expect(\"invariant\")` to document why this cannot fail"
                    .to_string(),
            ));
        } else if method.is_ident("expect") && !cfg.allow_expect {
            out.push(finding(
                path,
                method,
                "D4/unwrap-in-lib",
                "`expect()` in library code — propagate the error instead \
                 (set `allow_expect = true` under [rules.unwrap-in-lib] to accept \
                 invariant-documenting expects)"
                    .to_string(),
            ));
        }
    }
}

/// D4: public items without a doc comment, in crates not yet compiled
/// under `deny(missing_docs)`.
fn rule_pub_docs(path: &str, source: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    let lines: Vec<&str> = source.lines().collect();
    let documented = |pub_line: u32| -> bool {
        // Walk upward over attributes and blanks; a doc comment (or doc
        // attribute) immediately above the item documents it.
        let mut l = pub_line as usize - 1; // to 0-based, then step up
        while l > 0 {
            l -= 1;
            let text = lines.get(l).map_or("", |s| s.trim_start());
            if text.is_empty() || (text.starts_with("#[") && !text.starts_with("#[doc")) {
                continue;
            }
            return text.starts_with("///") || text.starts_with("#[doc") || text.starts_with("/**");
        }
        false
    };
    const ITEM_KINDS: [&str; 9] = [
        "fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union",
    ];
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test || !t.is_ident("pub") {
            continue;
        }
        // `pub(crate)` and friends are not public API.
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        // Skip `unsafe`/`async`/`extern` qualifiers to reach the kind.
        while tokens
            .get(j)
            .is_some_and(|t| t.is_ident("unsafe") || t.is_ident("async") || t.is_ident("extern"))
        {
            j += 1;
        }
        let Some(kind) = tokens.get(j) else { continue };
        if kind.kind != TokKind::Ident || !ITEM_KINDS.contains(&kind.text.as_str()) {
            continue;
        }
        if !documented(t.line) {
            out.push(finding(
                path,
                t,
                "D4/pub-docs",
                format!(
                    "public `{}` without a doc comment — document it (the crate \
                     is not yet under `#![deny(missing_docs)]`)",
                    kind.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(source: &str) -> Vec<Finding> {
        lint_file("x.rs", source, &FileContext::default(), &Config::default())
    }

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn hash_map_flagged_outside_tests_only() {
        let f = run("use std::collections::HashMap;\n#[cfg(test)]\nmod t { use std::collections::HashSet; }");
        assert_eq!(codes(&f), vec!["D1/hash-collections"]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn wall_clock_and_entropy_flagged() {
        let f = run("fn f() { let t = std::time::Instant::now(); let r = thread_rng(); }");
        assert_eq!(codes(&f), vec!["D2/wall-clock", "D2/ambient-entropy"]);
    }

    #[test]
    fn env_var_flagged_but_args_and_macro_are_not() {
        assert_eq!(
            codes(&run("fn f() { let v = std::env::var(\"X\"); }")),
            vec!["D2/ambient-entropy"]
        );
        assert!(run("fn f() { let a = std::env::args(); }").is_empty());
        assert!(run("const D: &str = env!(\"CARGO_MANIFEST_DIR\");").is_empty());
    }

    #[test]
    fn state_assignment_needs_the_guard_ident() {
        // No TaskState reference: a `state` field of some other type.
        assert!(run("fn f(s: &mut Rng) { s.state = 1; }").is_empty());
        // With the guard referenced, assignment is flagged…
        let src = "use x::TaskState;\nfn f(r: &mut Rec) { r.state = TaskState::Pending; }";
        assert_eq!(codes(&run(src)), vec!["D3/task-state"]);
        // …but comparisons and matches are not.
        let cmp = "use x::TaskState;\nfn f(r: &Rec) -> bool { r.state == TaskState::Pending }";
        assert!(run(cmp).is_empty());
    }

    #[test]
    fn state_owner_file_is_exempt() {
        let cfg = Config {
            state_owners: vec!["owner.rs".into()],
            ..Config::default()
        };
        let src = "use x::TaskState;\nfn f(r: &mut Rec) { r.state = TaskState::Pending; }";
        let f = lint_file("owner.rs", src, &FileContext::default(), &cfg);
        assert!(f.is_empty());
    }

    #[test]
    fn lease_calls_match_receiver_not_type() {
        // `rm` receiver outside a pairing point: flagged (freeze + release).
        let f = run("fn f(rm: &mut Rm) { rm.freeze(t, c); rm.release(t); }");
        assert_eq!(codes(&f), vec!["D3/freeze-release", "D3/freeze-release"]);
        // `buf.freeze()` (BytesMut) has a different receiver: clean.
        assert!(run("fn f(buf: BytesMut) -> Bytes { buf.freeze() }").is_empty());
        // Pairing-point file is exempt.
        let cfg = Config {
            lease_callers: vec!["pair.rs".into()],
            ..Config::default()
        };
        let ok = lint_file(
            "pair.rs",
            "fn f(rm: &mut Rm) { rm.freeze(t, c); }",
            &FileContext::default(),
            &cfg,
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn self_rm_calls_are_caught() {
        let f = run("impl P { fn f(&mut self) { self.rm.release(id); } }");
        assert_eq!(codes(&f), vec!["D3/freeze-release"]);
    }

    #[test]
    fn crate_root_gates_required() {
        let ctx = FileContext {
            is_crate_root: true,
            crate_has_doc_gate: true,
        };
        let f = lint_file("lib.rs", "//! Docs.\n", &ctx, &Config::default());
        assert_eq!(codes(&f), vec!["D4/lint-gates", "D4/lint-gates"]);
        let ok = lint_file(
            "lib.rs",
            "//! Docs.\n#![deny(missing_docs)]\n#![forbid(unsafe_code)]\n",
            &ctx,
            &Config::default(),
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn unwrap_flagged_expect_configurable() {
        let f = run("fn f(o: Option<u8>) -> u8 { o.unwrap() }");
        assert_eq!(codes(&f), vec!["D4/unwrap-in-lib"]);
        let e = run("fn f(o: Option<u8>) -> u8 { o.expect(\"set\") }");
        assert_eq!(codes(&e), vec!["D4/unwrap-in-lib"]);
        let cfg = Config {
            allow_expect: true,
            ..Config::default()
        };
        let ok = lint_file(
            "x.rs",
            "fn f(o: Option<u8>) -> u8 { o.expect(\"set\") }",
            &FileContext::default(),
            &cfg,
        );
        assert!(ok.is_empty());
        // `unwrap_or` must not match the unwrap pattern.
        assert!(run("fn f(o: Option<u8>) -> u8 { o.unwrap_or(0) }").is_empty());
    }

    #[test]
    fn pub_docs_only_without_the_gate() {
        let src = "/// Documented.\npub fn a() {}\n\npub fn b() {}\npub(crate) fn c() {}";
        let unguarded = FileContext::default();
        let f = lint_file("x.rs", src, &unguarded, &Config::default());
        assert_eq!(codes(&f), vec!["D4/pub-docs"]);
        assert_eq!(f[0].line, 4);
        let gated = FileContext {
            is_crate_root: false,
            crate_has_doc_gate: true,
        };
        assert!(lint_file("x.rs", src, &gated, &Config::default()).is_empty());
    }

    #[test]
    fn file_allowlist_suppresses_a_rule() {
        let mut cfg = Config::default();
        cfg.allow
            .insert("hash-collections".into(), vec!["x.rs".into()]);
        let f = lint_file(
            "x.rs",
            "use std::collections::HashMap;",
            &FileContext::default(),
            &cfg,
        );
        assert!(f.is_empty());
    }
}
