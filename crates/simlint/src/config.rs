//! `simlint.toml`: the reviewed-exception surface of the linter.
//!
//! Every rule can be relaxed here — and *only* here, so an intentional
//! exception is a diffable, reviewable line instead of an inline
//! attribute scattered through the tree. The format is a small TOML
//! subset (tables, strings, booleans, string arrays, `#` comments),
//! parsed by hand because the linter must not depend on the crates it
//! audits (and the workspace deliberately vendors no TOML parser).
//!
//! Unknown keys are hard errors: a typoed allowlist entry that silently
//! parses is an allowlist that silently does nothing.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A parse or validation error in `simlint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simlint.toml: {}", self.0)
    }
}

/// One parsed TOML value (the subset simlint uses).
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Bool(bool),
    List(Vec<String>),
}

/// The linter configuration. `Config::default()` is the strictest
/// setting — everything the workspace relaxes is in its `simlint.toml`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace-relative path prefixes treated as measurement harness:
    /// rule D2 (wall-clock / ambient entropy) does not apply there,
    /// because wall timings are those crates' product.
    pub harness: Vec<String>,
    /// Per-rule file allowlists, keyed by rule slug (e.g.
    /// `hash-collections`). Entries are workspace-relative paths.
    pub allow: BTreeMap<String, Vec<String>>,
    /// Whether `.expect("…")` is acceptable in library code. The
    /// workspace sets this to `true`: an expect message documents the
    /// invariant whose violation panics. Bare `.unwrap()` stays banned.
    pub allow_expect: bool,
    /// Receiver identifiers whose `.freeze(..)` / `.release(..)` calls
    /// are lease operations (rule D3), as opposed to e.g.
    /// `BytesMut::freeze`.
    pub lease_receivers: Vec<String>,
    /// Receiver *types* whose `.freeze(..)` / `.release(..)` calls are
    /// lease operations, matched through the call graph's receiver-type
    /// resolution (so a renamed binding cannot dodge rule D3).
    pub lease_types: Vec<String>,
    /// Files allowed to call lease freeze/release: the plan/commit
    /// pairing points.
    pub lease_callers: Vec<String>,
    /// Worker entry points for the P-rules (`Type::method`,
    /// `file.rs::name` or bare-name specs). Empty means the purity
    /// analysis is off — the workspace opts in via `simlint.toml`.
    pub purity_entries: Vec<String>,
    /// Functions pruned from the reachability walk: the reviewed escape
    /// hatch for call-graph over-approximation.
    pub purity_exempt: Vec<String>,
    /// Shared-mutation sink patterns for P1 (`Type::method`,
    /// `recv.method`, `prefix*` or bare names).
    pub mutation_sinks: Vec<String>,
    /// Interior-mutability type patterns for P2.
    pub interior_mutability: Vec<String>,
    /// Unordered-collection type patterns for P3.
    pub unordered_state: Vec<String>,
    /// Fan-out call names policed by P4 (e.g. `run_batch`).
    pub spawners: Vec<String>,
    /// Files allowed to call the spawners: the registered parallel
    /// regions.
    pub spawner_sites: Vec<String>,
    /// Files that own direct task-state assignment (the `mark_*` APIs).
    pub state_owners: Vec<String>,
    /// Identifier whose presence marks a file as task-lifecycle-aware;
    /// `.state = …` assignments are only policed in files referencing it
    /// (so unrelated `state` fields — RNG internals, node lifecycles —
    /// are not dragged in).
    pub state_guard: String,
    /// Entry points for the T-rules (`[rules.determinism-taint]
    /// entries`). Empty means the taint analysis is off — the workspace
    /// opts in via `simlint.toml`, same as the P-rules.
    pub taint_entries: Vec<String>,
    /// Functions pruned from the taint reachability walk: the reviewed
    /// escape hatch for call-graph over-approximation.
    pub taint_exempt: Vec<String>,
    /// Type heads whose values *are* rng streams: seeds the `STREAM`
    /// taint bit, and any method on such a receiver counts as a draw
    /// unless listed in [`Config::fork_methods`].
    pub stream_types: Vec<String>,
    /// Methods on a stream receiver that produce another stream rather
    /// than a draw (`fork`, `clone`).
    pub fork_methods: Vec<String>,
    /// `name:argindex` / `Type::method:argindex` positions that consume
    /// a root seed (rule T4 polices their provenance).
    pub seed_args: Vec<String>,
    /// `name:argindex` / `Type::method:argindex` positions that consume
    /// a stream label (rule T1 polices constancy and uniqueness).
    pub label_args: Vec<String>,
    /// Shared-state sink patterns for T2 (same grammar as the P1
    /// `mutation_sinks`): calls where a draw-tainted argument means
    /// randomness escaped the compute phase.
    pub escape_sinks: Vec<String>,
    /// Field names whose assignment from a draw-tainted value is a T2
    /// escape (`time`, `seq` — the deterministic-merge ordering keys).
    pub tainted_fields: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            harness: Vec::new(),
            allow: BTreeMap::new(),
            allow_expect: false,
            lease_receivers: vec!["rm".into()],
            lease_types: vec!["ResourceManager".into()],
            lease_callers: Vec::new(),
            purity_entries: Vec::new(),
            purity_exempt: Vec::new(),
            mutation_sinks: Vec::new(),
            interior_mutability: vec![
                "RefCell".into(),
                "Cell".into(),
                "UnsafeCell".into(),
                "Mutex".into(),
                "RwLock".into(),
                "OnceCell".into(),
                "OnceLock".into(),
                "LazyLock".into(),
                "Atomic*".into(),
            ],
            unordered_state: vec!["HashMap".into(), "HashSet".into()],
            spawners: Vec::new(),
            spawner_sites: Vec::new(),
            state_owners: Vec::new(),
            state_guard: "TaskState".into(),
            taint_entries: Vec::new(),
            taint_exempt: Vec::new(),
            stream_types: vec!["RngStream".into(), "SplitMix64".into()],
            fork_methods: vec!["fork".into(), "clone".into()],
            seed_args: vec!["derive_seed:0".into(), "RngStream::named:0".into()],
            label_args: vec!["RngStream::named:1".into(), "RngStream::fork:0".into()],
            escape_sinks: Vec::new(),
            tainted_fields: vec!["time".into(), "seq".into()],
        }
    }
}

impl Config {
    /// Parses a `simlint.toml` document.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on malformed syntax or unknown keys.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let values = parse_toml(text)?;
        let mut config = Config::default();
        for (key, value) in values {
            match key.as_str() {
                "workspace.harness" => config.harness = expect_list(&key, value)?,
                "rules.unwrap-in-lib.allow_expect" => {
                    config.allow_expect = expect_bool(&key, value)?;
                }
                "rules.freeze-release.receivers" => {
                    config.lease_receivers = expect_list(&key, value)?;
                }
                "rules.freeze-release.types" => {
                    config.lease_types = expect_list(&key, value)?;
                }
                "rules.freeze-release.callers" => {
                    config.lease_callers = expect_list(&key, value)?;
                }
                "rules.worker-purity.entries" => {
                    config.purity_entries = expect_list(&key, value)?;
                }
                "rules.worker-purity.exempt" => {
                    config.purity_exempt = expect_list(&key, value)?;
                }
                "rules.worker-purity.mutation_sinks" => {
                    config.mutation_sinks = expect_list(&key, value)?;
                }
                "rules.worker-purity.interior_mutability" => {
                    config.interior_mutability = expect_list(&key, value)?;
                }
                "rules.worker-purity.unordered_state" => {
                    config.unordered_state = expect_list(&key, value)?;
                }
                "rules.worker-purity.spawners" => {
                    config.spawners = expect_list(&key, value)?;
                }
                "rules.worker-purity.spawner_sites" => {
                    config.spawner_sites = expect_list(&key, value)?;
                }
                "rules.task-state.owners" => config.state_owners = expect_list(&key, value)?,
                "rules.task-state.guard" => config.state_guard = expect_str(&key, value)?,
                "rules.determinism-taint.entries" => {
                    config.taint_entries = expect_list(&key, value)?;
                }
                "rules.determinism-taint.exempt" => {
                    config.taint_exempt = expect_list(&key, value)?;
                }
                "rules.determinism-taint.stream_types" => {
                    config.stream_types = expect_list(&key, value)?;
                }
                "rules.determinism-taint.fork_methods" => {
                    config.fork_methods = expect_list(&key, value)?;
                }
                "rules.determinism-taint.seed_args" => {
                    config.seed_args = expect_list(&key, value)?;
                }
                "rules.determinism-taint.label_args" => {
                    config.label_args = expect_list(&key, value)?;
                }
                "rules.determinism-taint.escape_sinks" => {
                    config.escape_sinks = expect_list(&key, value)?;
                }
                "rules.determinism-taint.tainted_fields" => {
                    config.tainted_fields = expect_list(&key, value)?;
                }
                _ => {
                    if let Some(rule) = key
                        .strip_prefix("rules.")
                        .and_then(|r| r.strip_suffix(".allow"))
                    {
                        config
                            .allow
                            .insert(rule.to_string(), expect_list(&key, value)?);
                    } else {
                        return Err(ConfigError(format!("unknown key `{key}`")));
                    }
                }
            }
        }
        Ok(config)
    }

    /// Loads the config from `<root>/simlint.toml`; absent file means
    /// default (strictest) settings.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the file exists but does not parse.
    pub fn load(root: &Path) -> Result<Config, ConfigError> {
        match std::fs::read_to_string(root.join("simlint.toml")) {
            Ok(text) => Config::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(ConfigError(format!("unreadable: {e}"))),
        }
    }

    /// Whether `path` (workspace-relative, `/`-separated) is allowlisted
    /// for `rule`.
    pub fn is_allowed(&self, rule: &str, path: &str) -> bool {
        self.allow
            .get(rule)
            .is_some_and(|files| files.iter().any(|f| f == path))
    }

    /// Whether `path` lies under a harness prefix.
    pub fn is_harness(&self, path: &str) -> bool {
        self.harness.iter().any(|p| {
            path == p
                || path
                    .strip_prefix(p.as_str())
                    .is_some_and(|r| r.starts_with('/'))
        })
    }
}

fn expect_list(key: &str, value: Value) -> Result<Vec<String>, ConfigError> {
    match value {
        Value::List(v) => Ok(v),
        _ => Err(ConfigError(format!("`{key}` must be a string array"))),
    }
}

fn expect_bool(key: &str, value: Value) -> Result<bool, ConfigError> {
    match value {
        Value::Bool(b) => Ok(b),
        _ => Err(ConfigError(format!("`{key}` must be a boolean"))),
    }
}

fn expect_str(key: &str, value: Value) -> Result<String, ConfigError> {
    match value {
        Value::Str(s) => Ok(s),
        _ => Err(ConfigError(format!("`{key}` must be a string"))),
    }
}

/// Parses the TOML subset into dotted-key → value pairs.
fn parse_toml(text: &str) -> Result<BTreeMap<String, Value>, ConfigError> {
    let mut out = BTreeMap::new();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((n, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| ConfigError(format!("line {}: unterminated table header", n + 1)))?;
            section = name.trim().to_string();
            continue;
        }
        let (key, mut value_text) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .ok_or_else(|| ConfigError(format!("line {}: expected `key = value`", n + 1)))?;
        // Multi-line arrays: keep consuming until the closing bracket.
        if value_text.starts_with('[') {
            while !value_text.trim_end().ends_with(']') {
                let (_, cont) = lines
                    .next()
                    .ok_or_else(|| ConfigError(format!("line {}: unterminated array", n + 1)))?;
                value_text.push(' ');
                value_text.push_str(strip_comment(cont).trim());
            }
        }
        let full_key = if section.is_empty() {
            key
        } else {
            format!("{section}.{key}")
        };
        let value = parse_value(value_text.trim())
            .map_err(|e| ConfigError(format!("line {}: {e}", n + 1)))?;
        if out.insert(full_key.clone(), value).is_some() {
            return Err(ConfigError(format!("duplicate key `{full_key}`")));
        }
    }
    Ok(out)
}

/// Drops a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Result<Value, String> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let s = inner
            .strip_suffix('"')
            .ok_or_else(|| "unterminated string".to_string())?;
        return Ok(Value::Str(s.to_string()));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let body = inner
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?
            .trim();
        let mut items = Vec::new();
        if !body.is_empty() {
            for item in body.split(',') {
                let item = item.trim();
                if item.is_empty() {
                    continue; // trailing comma
                }
                match parse_value(item)? {
                    Value::Str(s) => items.push(s),
                    _ => return Err("arrays may only hold strings".into()),
                }
            }
        }
        return Ok(Value::List(items));
    }
    Err(format!("unsupported value `{text}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_surface() {
        let cfg = Config::parse(
            r##"
# comment
[workspace]
harness = ["crates/bench"]

[rules.hash-collections]
allow = [
    "crates/a/src/x.rs", # reviewed: order never escapes
    "crates/b/src/y.rs",
]

[rules.unwrap-in-lib]
allow_expect = true

[rules.freeze-release]
receivers = ["rm"]
callers = ["crates/core/src/platform.rs"]

[rules.task-state]
owners = ["crates/core/src/queue.rs"]
guard = "TaskState"
"##,
        )
        .expect("parses");
        assert!(cfg.is_harness("crates/bench/src/lib.rs"));
        assert!(!cfg.is_harness("crates/benchmark/src/lib.rs"));
        assert!(cfg.is_allowed("hash-collections", "crates/a/src/x.rs"));
        assert!(!cfg.is_allowed("hash-collections", "crates/c/src/z.rs"));
        assert!(cfg.allow_expect);
        assert_eq!(cfg.lease_callers, vec!["crates/core/src/platform.rs"]);
        assert_eq!(cfg.state_owners, vec!["crates/core/src/queue.rs"]);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let err = Config::parse("[rules.hash-collections]\nallowed = []").unwrap_err();
        assert!(err.0.contains("unknown key"), "{err}");
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Config::parse("just text").is_err());
        assert!(Config::parse("[unclosed").is_err());
        assert!(Config::parse("k = [\"a\"").is_err());
        assert!(Config::parse("[t]\nk = 17").is_err());
    }

    #[test]
    fn empty_and_missing_config_are_strict_defaults() {
        let cfg = Config::parse("").expect("empty parses");
        assert!(!cfg.allow_expect);
        assert!(cfg.harness.is_empty());
        assert_eq!(cfg.lease_receivers, vec!["rm"]);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = Config::parse("[workspace]\nharness = []\nharness = []").unwrap_err();
        assert!(err.0.contains("duplicate"), "{err}");
    }
}
