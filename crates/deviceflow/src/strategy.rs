//! Dispatch strategies and dropout specifications (§V-B).

use serde::{Deserialize, Serialize};
use simdc_types::{Result, SimDuration, SimInstant, SimdcError};

use crate::function::{Domain, TrafficFunction};

/// A point in time that is either relative to the end of the round or
/// absolute on the simulation timeline (§V-B supports both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeSpec {
    /// Offset after the activating event (round completion).
    Relative(SimDuration),
    /// Absolute virtual time.
    Absolute(SimInstant),
}

impl TimeSpec {
    /// Resolves against the activating instant, clamping absolute times
    /// that already passed to `reference` (dispatch as soon as possible).
    #[must_use]
    pub fn resolve(&self, reference: SimInstant) -> SimInstant {
        match *self {
            TimeSpec::Relative(d) => reference + d,
            TimeSpec::Absolute(t) => t.max(reference),
        }
    }
}

/// Dropout simulation knobs shared by the rule-based mechanisms: a
/// per-message transmission-failure probability and a random discard of a
/// fixed number of messages per dispatch point/interval.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Dropout {
    /// Independent per-message failure probability in `[0, 1]`.
    pub probability: f64,
    /// Number of randomly selected messages discarded at each dispatch
    /// point.
    pub random_discard: u64,
}

impl Dropout {
    /// No dropout.
    pub const NONE: Dropout = Dropout {
        probability: 0.0,
        random_discard: 0,
    };

    /// Validates the probability range.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::InvalidStrategy`] if the probability is not a
    /// probability.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.probability) {
            return Err(SimdcError::InvalidStrategy(format!(
                "dropout probability must be in [0, 1], got {}",
                self.probability
            )));
        }
        Ok(())
    }
}

/// One rule of the specific time-point dispatching mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimePointRule {
    /// When to send.
    pub at: TimeSpec,
    /// How many messages to send (capped by what the shelf holds).
    pub count: u64,
    /// Dropout applied at this point.
    pub dropout: Dropout,
}

/// A task's message-dispatching strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DispatchStrategy {
    /// Real-time accumulated dispatching: activated at round start; each
    /// time the accumulated shelf reaches the current threshold the batch
    /// is flushed downstream. The threshold sequence is cycled (`[20, 100,
    /// 50]` → 20, 100, 50, 20, …); `[1]` degenerates to immediate
    /// per-message forwarding like conventional simulators.
    RealTimeAccumulated {
        /// Cycled accumulation thresholds.
        thresholds: Vec<u64>,
        /// Per-message transmission-failure probability (device dropout).
        failure_prob: f64,
    },
    /// Rule-based: send fixed amounts at specific time points after round
    /// completion.
    TimePoints {
        /// The dispatch rules.
        points: Vec<TimePointRule>,
    },
    /// Rule-based: follow a transmission-rate curve over a time interval
    /// after round completion; the pending shelf volume is apportioned by
    /// AUC shares (see [`crate::discretize()`]).
    TimeInterval {
        /// The rate curve.
        function: TrafficFunction,
        /// The curve's own domain (scaled onto `interval`).
        domain: Domain,
        /// When the interval starts.
        start: TimeSpec,
        /// Real-time length of the dispatch interval.
        interval: SimDuration,
        /// Dropout applied per dispatch point.
        dropout: Dropout,
    },
}

impl DispatchStrategy {
    /// Immediate forwarding (threshold 1, no failures) — the behaviour of
    /// conventional simulators.
    #[must_use]
    pub fn immediate() -> Self {
        DispatchStrategy::RealTimeAccumulated {
            thresholds: vec![1],
            failure_prob: 0.0,
        }
    }

    /// Validates the strategy.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::InvalidStrategy`] describing the violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        use SimdcError::InvalidStrategy;
        match self {
            DispatchStrategy::RealTimeAccumulated {
                thresholds,
                failure_prob,
            } => {
                if thresholds.is_empty() {
                    return Err(InvalidStrategy(
                        "real-time strategy needs at least one threshold".into(),
                    ));
                }
                if thresholds.contains(&0) {
                    return Err(InvalidStrategy("thresholds must be >= 1".into()));
                }
                if !(0.0..=1.0).contains(failure_prob) {
                    return Err(InvalidStrategy(format!(
                        "failure probability must be in [0, 1], got {failure_prob}"
                    )));
                }
            }
            DispatchStrategy::TimePoints { points } => {
                if points.is_empty() {
                    return Err(InvalidStrategy(
                        "time-point strategy needs at least one point".into(),
                    ));
                }
                for p in points {
                    p.dropout.validate()?;
                }
            }
            DispatchStrategy::TimeInterval {
                function,
                domain,
                interval,
                dropout,
                ..
            } => {
                function.validate_on(domain)?;
                if interval.is_zero() {
                    return Err(InvalidStrategy("dispatch interval must be positive".into()));
                }
                dropout.validate()?;
            }
        }
        Ok(())
    }

    /// Whether the strategy activates at round start (real-time) rather
    /// than round completion (rule-based).
    #[must_use]
    pub fn activates_at_round_start(&self) -> bool {
        matches!(self, DispatchStrategy::RealTimeAccumulated { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timespec_resolution() {
        let t0 = SimInstant::from_micros(1_000_000);
        assert_eq!(
            TimeSpec::Relative(SimDuration::from_secs(5)).resolve(t0),
            t0 + SimDuration::from_secs(5)
        );
        let future = SimInstant::from_micros(9_000_000);
        assert_eq!(TimeSpec::Absolute(future).resolve(t0), future);
        // Past absolute times clamp to the reference.
        let past = SimInstant::from_micros(10);
        assert_eq!(TimeSpec::Absolute(past).resolve(t0), t0);
    }

    #[test]
    fn realtime_validation() {
        assert!(DispatchStrategy::immediate().validate().is_ok());
        assert!(DispatchStrategy::RealTimeAccumulated {
            thresholds: vec![],
            failure_prob: 0.0
        }
        .validate()
        .is_err());
        assert!(DispatchStrategy::RealTimeAccumulated {
            thresholds: vec![0],
            failure_prob: 0.0
        }
        .validate()
        .is_err());
        assert!(DispatchStrategy::RealTimeAccumulated {
            thresholds: vec![1],
            failure_prob: 1.5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn timepoint_validation() {
        assert!(DispatchStrategy::TimePoints { points: vec![] }
            .validate()
            .is_err());
        let good = DispatchStrategy::TimePoints {
            points: vec![TimePointRule {
                at: TimeSpec::Relative(SimDuration::from_secs(1)),
                count: 100,
                dropout: Dropout::NONE,
            }],
        };
        assert!(good.validate().is_ok());
        let bad = DispatchStrategy::TimePoints {
            points: vec![TimePointRule {
                at: TimeSpec::Relative(SimDuration::from_secs(1)),
                count: 100,
                dropout: Dropout {
                    probability: -0.1,
                    random_discard: 0,
                },
            }],
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn interval_validation() {
        let (f, d) = TrafficFunction::right_tailed_normal(1.0);
        let good = DispatchStrategy::TimeInterval {
            function: f.clone(),
            domain: d,
            start: TimeSpec::Relative(SimDuration::ZERO),
            interval: SimDuration::from_secs(60),
            dropout: Dropout::NONE,
        };
        assert!(good.validate().is_ok());
        let bad = DispatchStrategy::TimeInterval {
            function: f,
            domain: d,
            start: TimeSpec::Relative(SimDuration::ZERO),
            interval: SimDuration::ZERO,
            dropout: Dropout::NONE,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn activation_phase() {
        assert!(DispatchStrategy::immediate().activates_at_round_start());
        assert!(!DispatchStrategy::TimePoints {
            points: vec![TimePointRule {
                at: TimeSpec::Relative(SimDuration::ZERO),
                count: 1,
                dropout: Dropout::NONE,
            }],
        }
        .activates_at_round_start());
    }
}
