//! Per-task dispatchers: execute a strategy against a shelf.
//!
//! Dispatchers associated with different shelves operate independently, so
//! the dispatch processes of different tasks never interfere (§V-A).

use std::collections::BTreeMap;

use simdc_simrt::RngStream;
use simdc_types::{Message, Result, SimDuration, SimInstant, TaskId};

use crate::discretize::discretize;
use crate::shelf::Shelf;
use crate::strategy::{DispatchStrategy, Dropout};

/// A batch of messages released downstream, plus how many were dropped by
/// the dropout simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchBatch {
    /// Release time.
    pub at: SimInstant,
    /// Messages that survived dropout.
    pub messages: Vec<Message>,
    /// Messages lost to simulated transmission failure / discard.
    pub dropped: u64,
}

impl DispatchBatch {
    /// Messages attempted (delivered + dropped).
    #[must_use]
    pub fn attempted(&self) -> u64 {
        self.messages.len() as u64 + self.dropped
    }
}

#[derive(Debug, Clone)]
struct PendingSend {
    count: u64,
    dropout: Dropout,
}

/// The per-task dispatcher state machine.
///
/// The owning [`crate::DeviceFlow`] calls the `on_*` hooks and is
/// responsible for scheduling the `(instant, seq)` pairs they return as
/// [`crate::FlowEvent::DispatchDue`] events.
#[derive(Debug)]
pub struct Dispatcher {
    task: TaskId,
    strategy: DispatchStrategy,
    capacity_per_sec: u64,
    cycle_idx: usize,
    round_active: bool,
    pending: BTreeMap<u64, PendingSend>,
    next_seq: u64,
}

impl Dispatcher {
    /// Creates a dispatcher for `task`.
    ///
    /// # Errors
    ///
    /// Returns [`simdc_types::SimdcError::InvalidStrategy`] if the strategy
    /// fails validation.
    pub fn new(task: TaskId, strategy: DispatchStrategy, capacity_per_sec: u64) -> Result<Self> {
        strategy.validate()?;
        if capacity_per_sec == 0 {
            return Err(simdc_types::SimdcError::InvalidStrategy(
                "capacity must be positive".into(),
            ));
        }
        Ok(Dispatcher {
            task,
            strategy,
            capacity_per_sec,
            cycle_idx: 0,
            round_active: false,
            pending: BTreeMap::new(),
            next_seq: 0,
        })
    }

    /// The owning task.
    #[must_use]
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// The configured strategy.
    #[must_use]
    pub fn strategy(&self) -> &DispatchStrategy {
        &self.strategy
    }

    /// Round start: activates real-time dispatching. Returns immediate
    /// flushes in case the shelf already holds a backlog over the
    /// threshold.
    pub fn on_round_started(
        &mut self,
        now: SimInstant,
        shelf: &mut Shelf,
        rng: &mut RngStream,
    ) -> Vec<DispatchBatch> {
        self.round_active = true;
        if self.strategy.activates_at_round_start() {
            self.drain_realtime(now, shelf, rng)
        } else {
            Vec::new()
        }
    }

    /// Message ingress: real-time strategies may flush.
    pub fn on_ingest(
        &mut self,
        now: SimInstant,
        shelf: &mut Shelf,
        rng: &mut RngStream,
    ) -> Vec<DispatchBatch> {
        if self.round_active && self.strategy.activates_at_round_start() {
            self.drain_realtime(now, shelf, rng)
        } else {
            Vec::new()
        }
    }

    /// Round completion: rule-based strategies lay out their dispatch
    /// schedule now. Returns `(instant, seq)` pairs to schedule as
    /// `DispatchDue` events.
    ///
    /// # Errors
    ///
    /// Propagates discretization failures for time-interval strategies.
    pub fn on_round_completed(
        &mut self,
        now: SimInstant,
        shelf: &Shelf,
    ) -> Result<Vec<(SimInstant, u64)>> {
        self.round_active = false;
        match &self.strategy {
            DispatchStrategy::RealTimeAccumulated { .. } => Ok(Vec::new()),
            DispatchStrategy::TimePoints { points } => {
                let mut due = Vec::with_capacity(points.len());
                for rule in points.clone() {
                    let at = rule.at.resolve(now);
                    let seq = self.push_pending(PendingSend {
                        count: rule.count,
                        dropout: rule.dropout,
                    });
                    due.push((at, seq));
                }
                Ok(due)
            }
            DispatchStrategy::TimeInterval {
                function,
                domain,
                start,
                interval,
                dropout,
            } => {
                let volume = shelf.len() as u64;
                let plan = discretize(function, domain, *interval, volume, self.capacity_per_sec)?;
                let begin = start.resolve(now);
                let dropout = *dropout;
                let mut due = Vec::new();
                for point in plan.points() {
                    if point.count == 0 {
                        continue;
                    }
                    let seq = self.push_pending(PendingSend {
                        count: point.count,
                        dropout,
                    });
                    due.push((begin + point.offset, seq));
                }
                Ok(due)
            }
        }
    }

    /// A scheduled dispatch came due. Returns the released batch (if any
    /// messages were pending) and any follow-up `(instant, seq)` to
    /// schedule — the rate-cap spillover of Fig 10(b).
    pub fn on_due(
        &mut self,
        now: SimInstant,
        seq: u64,
        shelf: &mut Shelf,
        rng: &mut RngStream,
    ) -> (Option<DispatchBatch>, Vec<(SimInstant, u64)>) {
        let Some(send) = self.pending.remove(&seq) else {
            return (None, Vec::new());
        };
        // The single-threaded sender cannot push more than one second of
        // capacity in one burst; the overflow spills into the next second.
        let burst = send.count.min(self.capacity_per_sec);
        let taken = shelf.take(burst as usize);
        let remainder = send.count - burst;
        let mut followups = Vec::new();
        if remainder > 0 && !shelf.is_empty() {
            let seq = self.push_pending(PendingSend {
                count: remainder,
                dropout: send.dropout,
            });
            followups.push((now + SimDuration::from_secs(1), seq));
        }
        if taken.is_empty() {
            return (None, followups);
        }
        let batch = apply_dropout(now, taken, send.dropout, rng);
        (Some(batch), followups)
    }

    /// Messages scheduled but not yet released.
    #[must_use]
    pub fn pending_count(&self) -> u64 {
        self.pending.values().map(|p| p.count).sum()
    }

    fn push_pending(&mut self, send: PendingSend) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq, send);
        seq
    }

    fn drain_realtime(
        &mut self,
        now: SimInstant,
        shelf: &mut Shelf,
        rng: &mut RngStream,
    ) -> Vec<DispatchBatch> {
        let DispatchStrategy::RealTimeAccumulated {
            thresholds,
            failure_prob,
        } = &self.strategy
        else {
            return Vec::new();
        };
        let thresholds = thresholds.clone();
        let failure_prob = *failure_prob;
        let mut batches = Vec::new();
        loop {
            let threshold = thresholds[self.cycle_idx % thresholds.len()];
            if (shelf.len() as u64) < threshold {
                break;
            }
            let taken = shelf.take(threshold as usize);
            self.cycle_idx += 1;
            let batch = apply_dropout(
                now,
                taken,
                Dropout {
                    probability: failure_prob,
                    random_discard: 0,
                },
                rng,
            );
            batches.push(batch);
        }
        batches
    }
}

/// Applies dropout to a batch: independent per-message failures first, then
/// the random discard of a fixed count.
fn apply_dropout(
    at: SimInstant,
    messages: Vec<Message>,
    dropout: Dropout,
    rng: &mut RngStream,
) -> DispatchBatch {
    let before = messages.len() as u64;
    let mut kept: Vec<Message> = if dropout.probability > 0.0 {
        messages
            .into_iter()
            .filter(|_| !rng.chance(dropout.probability))
            .collect()
    } else {
        messages
    };
    let mut dropped_total = before - kept.len() as u64;
    for _ in 0..dropout.random_discard {
        if kept.is_empty() {
            break;
        }
        let idx = rng.index(kept.len());
        kept.swap_remove(idx);
        dropped_total += 1;
    }
    DispatchBatch {
        at,
        messages: kept,
        dropped: dropped_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::TrafficFunction;
    use crate::strategy::{TimePointRule, TimeSpec};
    use simdc_types::{DeviceId, MessageId, RoundId, StorageKey};

    fn msg(i: u64) -> Message {
        Message::model_update(
            MessageId(i),
            TaskId(1),
            DeviceId(i),
            RoundId(0),
            10,
            StorageKey::for_update(TaskId(1), RoundId(0), DeviceId(i)),
            SimInstant::EPOCH,
        )
    }

    fn filled_shelf(n: u64) -> Shelf {
        let mut shelf = Shelf::new(TaskId(1));
        for i in 0..n {
            shelf.push(msg(i));
        }
        shelf
    }

    fn t(secs: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs(secs)
    }

    #[test]
    fn realtime_cycles_threshold_sequence() {
        let mut d = Dispatcher::new(
            TaskId(1),
            DispatchStrategy::RealTimeAccumulated {
                thresholds: vec![20, 100, 50],
                failure_prob: 0.0,
            },
            700,
        )
        .unwrap();
        let mut shelf = filled_shelf(200);
        let mut rng = RngStream::from_seed(1);
        let batches = d.on_round_started(t(0), &mut shelf, &mut rng);
        // 200 pending → 20, then 100, then 50; 30 left (< next 20? no: 30 ≥ 20
        // → another 20 flushes, leaving 10 < 100).
        let sizes: Vec<usize> = batches.iter().map(|b| b.messages.len()).collect();
        assert_eq!(sizes, vec![20, 100, 50, 20]);
        assert_eq!(shelf.len(), 10);
    }

    #[test]
    fn realtime_flushes_on_ingest_only_when_round_active() {
        let mut d = Dispatcher::new(TaskId(1), DispatchStrategy::immediate(), 700).unwrap();
        let mut shelf = Shelf::new(TaskId(1));
        let mut rng = RngStream::from_seed(2);
        shelf.push(msg(0));
        // Not active yet.
        assert!(d.on_ingest(t(0), &mut shelf, &mut rng).is_empty());
        assert_eq!(shelf.len(), 1);
        // Activate: backlog flushes immediately.
        let batches = d.on_round_started(t(1), &mut shelf, &mut rng);
        assert_eq!(batches.len(), 1);
        shelf.push(msg(1));
        let batches = d.on_ingest(t(2), &mut shelf, &mut rng);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].messages[0].id, MessageId(1));
    }

    #[test]
    fn realtime_failure_probability_drops_messages() {
        let mut d = Dispatcher::new(
            TaskId(1),
            DispatchStrategy::RealTimeAccumulated {
                thresholds: vec![1],
                failure_prob: 0.5,
            },
            700,
        )
        .unwrap();
        let mut shelf = filled_shelf(2_000);
        let mut rng = RngStream::from_seed(3);
        let batches = d.on_round_started(t(0), &mut shelf, &mut rng);
        let delivered: usize = batches.iter().map(|b| b.messages.len()).sum();
        let dropped: u64 = batches.iter().map(|b| b.dropped).sum();
        assert_eq!(delivered as u64 + dropped, 2_000);
        let rate = dropped as f64 / 2_000.0;
        assert!((rate - 0.5).abs() < 0.05, "drop rate {rate}");
    }

    #[test]
    fn timepoints_schedule_and_release() {
        let mut d = Dispatcher::new(
            TaskId(1),
            DispatchStrategy::TimePoints {
                points: vec![
                    TimePointRule {
                        at: TimeSpec::Relative(SimDuration::from_secs(5)),
                        count: 30,
                        dropout: Dropout::NONE,
                    },
                    TimePointRule {
                        at: TimeSpec::Relative(SimDuration::from_secs(10)),
                        count: 70,
                        dropout: Dropout::NONE,
                    },
                ],
            },
            700,
        )
        .unwrap();
        let mut shelf = filled_shelf(100);
        let due = d.on_round_completed(t(0), &shelf).unwrap();
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].0, t(5));
        assert_eq!(due[1].0, t(10));
        assert_eq!(d.pending_count(), 100);

        let mut rng = RngStream::from_seed(4);
        let (batch, follow) = d.on_due(t(5), due[0].1, &mut shelf, &mut rng);
        assert_eq!(batch.unwrap().messages.len(), 30);
        assert!(follow.is_empty());
        let (batch, _) = d.on_due(t(10), due[1].1, &mut shelf, &mut rng);
        assert_eq!(batch.unwrap().messages.len(), 70);
        assert!(shelf.is_empty());
    }

    #[test]
    fn capacity_overflow_spills_into_next_second() {
        let mut d = Dispatcher::new(
            TaskId(1),
            DispatchStrategy::TimePoints {
                points: vec![TimePointRule {
                    at: TimeSpec::Relative(SimDuration::ZERO),
                    count: 1_500,
                    dropout: Dropout::NONE,
                }],
            },
            700,
        )
        .unwrap();
        let mut shelf = filled_shelf(1_500);
        let due = d.on_round_completed(t(0), &shelf).unwrap();
        let mut rng = RngStream::from_seed(5);

        let (b1, f1) = d.on_due(t(0), due[0].1, &mut shelf, &mut rng);
        assert_eq!(b1.unwrap().messages.len(), 700);
        assert_eq!(f1.len(), 1);
        assert_eq!(f1[0].0, t(1));

        let (b2, f2) = d.on_due(t(1), f1[0].1, &mut shelf, &mut rng);
        assert_eq!(b2.unwrap().messages.len(), 700);
        let (b3, f3) = d.on_due(t(2), f2[0].1, &mut shelf, &mut rng);
        assert_eq!(b3.unwrap().messages.len(), 100);
        assert!(f3.is_empty());
        assert!(shelf.is_empty());
    }

    #[test]
    fn random_discard_removes_exact_count() {
        let mut d = Dispatcher::new(
            TaskId(1),
            DispatchStrategy::TimePoints {
                points: vec![TimePointRule {
                    at: TimeSpec::Relative(SimDuration::ZERO),
                    count: 50,
                    dropout: Dropout {
                        probability: 0.0,
                        random_discard: 7,
                    },
                }],
            },
            700,
        )
        .unwrap();
        let mut shelf = filled_shelf(50);
        let due = d.on_round_completed(t(0), &shelf).unwrap();
        let mut rng = RngStream::from_seed(6);
        let (batch, _) = d.on_due(t(0), due[0].1, &mut shelf, &mut rng);
        let batch = batch.unwrap();
        assert_eq!(batch.messages.len(), 43);
        assert_eq!(batch.dropped, 7);
    }

    #[test]
    fn interval_strategy_discretizes_shelf_volume() {
        let (function, domain) = TrafficFunction::right_tailed_normal(1.0);
        let mut d = Dispatcher::new(
            TaskId(1),
            DispatchStrategy::TimeInterval {
                function,
                domain,
                start: TimeSpec::Relative(SimDuration::ZERO),
                interval: SimDuration::from_secs(60),
                dropout: Dropout::NONE,
            },
            700,
        )
        .unwrap();
        let mut shelf = filled_shelf(5_000);
        let due = d.on_round_completed(t(0), &shelf).unwrap();
        assert!(!due.is_empty());
        assert_eq!(d.pending_count(), 5_000);
        // Releasing everything delivers the full volume.
        let mut rng = RngStream::from_seed(7);
        let mut delivered = 0usize;
        for (at, seq) in due {
            let (batch, follow) = d.on_due(at, seq, &mut shelf, &mut rng);
            assert!(follow.is_empty(), "plans are pre-capped");
            if let Some(b) = batch {
                delivered += b.messages.len();
            }
        }
        assert_eq!(delivered, 5_000);
    }

    #[test]
    fn due_with_unknown_seq_is_noop() {
        let mut d = Dispatcher::new(TaskId(1), DispatchStrategy::immediate(), 700).unwrap();
        let mut shelf = filled_shelf(3);
        let mut rng = RngStream::from_seed(8);
        let (batch, follow) = d.on_due(t(0), 99, &mut shelf, &mut rng);
        assert!(batch.is_none());
        assert!(follow.is_empty());
        assert_eq!(shelf.len(), 3);
    }

    #[test]
    fn empty_shelf_due_emits_nothing() {
        let mut d = Dispatcher::new(
            TaskId(1),
            DispatchStrategy::TimePoints {
                points: vec![TimePointRule {
                    at: TimeSpec::Relative(SimDuration::ZERO),
                    count: 10,
                    dropout: Dropout::NONE,
                }],
            },
            700,
        )
        .unwrap();
        let shelf_snapshot = Shelf::new(TaskId(1));
        let due = d.on_round_completed(t(0), &shelf_snapshot).unwrap();
        let mut shelf = Shelf::new(TaskId(1));
        let mut rng = RngStream::from_seed(9);
        let (batch, follow) = d.on_due(t(0), due[0].1, &mut shelf, &mut rng);
        assert!(batch.is_none());
        assert!(follow.is_empty());
    }
}
