//! User-definable transmission-rate functions `y = f(t)`.
//!
//! §V-B requires rate functions to be *single-valued, bounded, non-negative
//! and (piecewise) continuous*. The built-in shapes cover everything the
//! paper evaluates (Table II: `N(0,1)`, `N(0,2)`, `sin(t)+1`, `cos(t)+1`,
//! `2^t`, `10^t`) plus a piecewise-linear escape hatch for arbitrary
//! user-drawn curves.

use serde::{Deserialize, Serialize};
use simdc_types::{Result, SimdcError};

/// A closed time domain `[start, end]` in function-space units (the domain
/// is later scaled onto the actual dispatch interval, §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Domain {
    /// Inclusive lower end.
    pub start: f64,
    /// Inclusive upper end.
    pub end: f64,
}

impl Domain {
    /// Creates a domain.
    ///
    /// # Errors
    ///
    /// Returns `InvalidStrategy` if the bounds are not finite or
    /// `start >= end`.
    pub fn new(start: f64, end: f64) -> Result<Self> {
        if !start.is_finite() || !end.is_finite() || start >= end {
            return Err(SimdcError::InvalidStrategy(format!(
                "domain must be a finite non-empty interval, got [{start}, {end}]"
            )));
        }
        Ok(Domain { start, end })
    }

    /// Domain width.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.end - self.start
    }

    /// Linear interpolation: maps `frac ∈ [0,1]` onto the domain.
    #[must_use]
    pub fn lerp(&self, frac: f64) -> f64 {
        self.start + self.width() * frac
    }
}

/// A transmission-rate curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficFunction {
    /// The `N(0, σ)` probability density. Restricted to a non-negative
    /// domain this is the paper's "right-tailed normal distribution".
    Normal {
        /// Standard deviation σ > 0.
        sigma: f64,
    },
    /// `sin(t) + 1`.
    SinPlus1,
    /// `cos(t) + 1`.
    CosPlus1,
    /// `2^t`.
    Exp2,
    /// `10^t`.
    Exp10,
    /// A constant non-negative rate.
    Constant(f64),
    /// Piecewise-linear interpolation through `(t, y)` knots (the escape
    /// hatch for user-drawn curves; knots must be strictly increasing in
    /// `t` and non-negative in `y`).
    PiecewiseLinear {
        /// The interpolation knots.
        points: Vec<(f64, f64)>,
    },
}

impl TrafficFunction {
    /// The right-tailed normal scenario of Fig 9/10: `N(0, σ)` on
    /// `[0, 4σ]`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not positive and finite.
    #[must_use]
    pub fn right_tailed_normal(sigma: f64) -> (TrafficFunction, Domain) {
        assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive");
        (
            TrafficFunction::Normal { sigma },
            Domain {
                start: 0.0,
                end: 4.0 * sigma,
            },
        )
    }

    /// Evaluates the function at `t`.
    #[must_use]
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            TrafficFunction::Normal { sigma } => {
                let z = t / sigma;
                (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
            }
            TrafficFunction::SinPlus1 => t.sin() + 1.0,
            TrafficFunction::CosPlus1 => t.cos() + 1.0,
            TrafficFunction::Exp2 => 2f64.powf(t),
            TrafficFunction::Exp10 => 10f64.powf(t),
            TrafficFunction::Constant(c) => *c,
            TrafficFunction::PiecewiseLinear { points } => piecewise_eval(points, t),
        }
    }

    /// Checks the §V-B contract on `domain`: parameters in range, and the
    /// curve finite, non-negative and bounded across a dense sample.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::InvalidStrategy`] with the violated constraint.
    pub fn validate_on(&self, domain: &Domain) -> Result<()> {
        use SimdcError::InvalidStrategy;
        match self {
            TrafficFunction::Normal { sigma } if !(sigma.is_finite() && *sigma > 0.0) => {
                return Err(InvalidStrategy(format!(
                    "normal sigma must be positive, got {sigma}"
                )));
            }
            TrafficFunction::Constant(c) if !(c.is_finite() && *c >= 0.0) => {
                return Err(InvalidStrategy(format!(
                    "constant rate must be non-negative, got {c}"
                )));
            }
            TrafficFunction::PiecewiseLinear { points } => {
                if points.len() < 2 {
                    return Err(InvalidStrategy(
                        "piecewise-linear curve needs at least two knots".into(),
                    ));
                }
                for pair in points.windows(2) {
                    if pair[0].0 >= pair[1].0 {
                        return Err(InvalidStrategy(
                            "piecewise-linear knots must be strictly increasing in t".into(),
                        ));
                    }
                }
                if points
                    .iter()
                    .any(|&(t, y)| !t.is_finite() || !y.is_finite() || y < 0.0)
                {
                    return Err(InvalidStrategy(
                        "piecewise-linear knots must be finite and non-negative".into(),
                    ));
                }
            }
            _ => {}
        }
        // Dense sampling check (covers all variants uniformly).
        const SAMPLES: usize = 512;
        for i in 0..=SAMPLES {
            let t = domain.lerp(i as f64 / SAMPLES as f64);
            let y = self.eval(t);
            if !y.is_finite() {
                return Err(InvalidStrategy(format!(
                    "rate function is not finite at t = {t}"
                )));
            }
            if y < 0.0 {
                return Err(InvalidStrategy(format!(
                    "rate function is negative at t = {t} (y = {y})"
                )));
            }
        }
        Ok(())
    }
}

fn piecewise_eval(points: &[(f64, f64)], t: f64) -> f64 {
    match points {
        [] => 0.0,
        [(_, y)] => *y,
        _ => {
            let first = points.first().expect("non-empty");
            let last = points.last().expect("non-empty");
            if t <= first.0 {
                return first.1;
            }
            if t >= last.0 {
                return last.1;
            }
            for pair in points.windows(2) {
                let (t0, y0) = pair[0];
                let (t1, y1) = pair[1];
                if t >= t0 && t <= t1 {
                    let frac = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
                    return y0 + frac * (y1 - y0);
                }
            }
            last.1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_validation() {
        assert!(Domain::new(0.0, 1.0).is_ok());
        assert!(Domain::new(1.0, 1.0).is_err());
        assert!(Domain::new(2.0, 1.0).is_err());
        assert!(Domain::new(f64::NAN, 1.0).is_err());
        assert!(Domain::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn domain_lerp() {
        let d = Domain::new(-4.0, 4.0).unwrap();
        assert_eq!(d.lerp(0.0), -4.0);
        assert_eq!(d.lerp(0.5), 0.0);
        assert_eq!(d.lerp(1.0), 4.0);
        assert_eq!(d.width(), 8.0);
    }

    #[test]
    fn normal_pdf_values() {
        let f = TrafficFunction::Normal { sigma: 1.0 };
        assert!((f.eval(0.0) - 0.398_942).abs() < 1e-5);
        assert!((f.eval(1.0) - 0.241_970).abs() < 1e-5);
        // Symmetric.
        assert_eq!(f.eval(-2.0), f.eval(2.0));
        // Wider sigma → lower peak.
        let wide = TrafficFunction::Normal { sigma: 2.0 };
        assert!(wide.eval(0.0) < f.eval(0.0));
    }

    #[test]
    fn trig_and_exp_curves() {
        assert_eq!(TrafficFunction::SinPlus1.eval(0.0), 1.0);
        assert!((TrafficFunction::SinPlus1.eval(std::f64::consts::FRAC_PI_2) - 2.0).abs() < 1e-12);
        assert_eq!(TrafficFunction::CosPlus1.eval(0.0), 2.0);
        assert_eq!(TrafficFunction::Exp2.eval(3.0), 8.0);
        assert_eq!(TrafficFunction::Exp10.eval(2.0), 100.0);
    }

    #[test]
    fn table2_functions_validate_on_their_domains() {
        let six_pi = 6.0 * std::f64::consts::PI;
        let cases: Vec<(TrafficFunction, Domain)> = vec![
            (
                TrafficFunction::Normal { sigma: 1.0 },
                Domain::new(-4.0, 4.0).unwrap(),
            ),
            (
                TrafficFunction::Normal { sigma: 2.0 },
                Domain::new(-4.0, 4.0).unwrap(),
            ),
            (TrafficFunction::SinPlus1, Domain::new(0.0, six_pi).unwrap()),
            (TrafficFunction::CosPlus1, Domain::new(0.0, six_pi).unwrap()),
            (TrafficFunction::Exp2, Domain::new(0.0, 3.0).unwrap()),
            (TrafficFunction::Exp10, Domain::new(0.0, 3.0).unwrap()),
        ];
        for (f, d) in cases {
            assert!(f.validate_on(&d).is_ok(), "{f:?} on {d:?}");
        }
    }

    #[test]
    fn right_tailed_normal_helper() {
        let (f, d) = TrafficFunction::right_tailed_normal(2.0);
        assert_eq!(d.start, 0.0);
        assert_eq!(d.end, 8.0);
        assert!(f.validate_on(&d).is_ok());
        // Monotone decreasing on the right tail.
        assert!(f.eval(0.0) > f.eval(4.0));
    }

    #[test]
    fn invalid_functions_rejected() {
        let d = Domain::new(0.0, 1.0).unwrap();
        assert!(TrafficFunction::Normal { sigma: 0.0 }
            .validate_on(&d)
            .is_err());
        assert!(TrafficFunction::Constant(-1.0).validate_on(&d).is_err());
        assert!(TrafficFunction::PiecewiseLinear {
            points: vec![(0.0, 1.0)]
        }
        .validate_on(&d)
        .is_err());
        assert!(TrafficFunction::PiecewiseLinear {
            points: vec![(0.0, 1.0), (0.0, 2.0)]
        }
        .validate_on(&d)
        .is_err());
        assert!(TrafficFunction::PiecewiseLinear {
            points: vec![(0.0, 1.0), (1.0, -2.0)]
        }
        .validate_on(&d)
        .is_err());
    }

    #[test]
    fn piecewise_linear_interpolates_and_clamps() {
        let f = TrafficFunction::PiecewiseLinear {
            points: vec![(0.0, 0.0), (1.0, 10.0), (2.0, 4.0)],
        };
        assert_eq!(f.eval(0.5), 5.0);
        assert_eq!(f.eval(1.5), 7.0);
        assert_eq!(f.eval(-1.0), 0.0); // clamp left
        assert_eq!(f.eval(5.0), 4.0); // clamp right
        assert!(f.validate_on(&Domain::new(0.0, 2.0).unwrap()).is_ok());
    }
}
