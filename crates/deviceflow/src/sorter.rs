//! The Sorter: routes incoming messages to per-task shelves.

use std::collections::BTreeMap;

use simdc_types::{Message, TaskId};

use crate::shelf::Shelf;

/// Receives messages from the computation clusters and stores each on the
/// shelf selected by the message's `task_id` (Fig 4). Shelves are created
/// on demand, so tasks that never registered a strategy still buffer
/// safely.
#[derive(Debug, Default)]
pub struct Sorter {
    shelves: BTreeMap<TaskId, Shelf>,
}

impl Sorter {
    /// Creates an empty sorter.
    #[must_use]
    pub fn new() -> Self {
        Sorter::default()
    }

    /// Routes a message to its task's shelf, creating the shelf if needed.
    /// Returns the shelf for follow-up inspection.
    pub fn route(&mut self, message: Message) -> &mut Shelf {
        let task = message.task;
        let shelf = self.shelves.entry(task).or_insert_with(|| Shelf::new(task));
        shelf.push(message);
        shelf
    }

    /// The shelf of `task`, if any messages ever arrived or
    /// [`Sorter::ensure_shelf`] was called.
    #[must_use]
    pub fn shelf(&self, task: TaskId) -> Option<&Shelf> {
        self.shelves.get(&task)
    }

    /// Mutable shelf access.
    pub fn shelf_mut(&mut self, task: TaskId) -> Option<&mut Shelf> {
        self.shelves.get_mut(&task)
    }

    /// Creates the shelf for `task` eagerly (idempotent).
    pub fn ensure_shelf(&mut self, task: TaskId) -> &mut Shelf {
        self.shelves.entry(task).or_insert_with(|| Shelf::new(task))
    }

    /// Number of shelves.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shelves.len()
    }

    /// Whether no shelf exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shelves.is_empty()
    }

    /// Iterates over `(task, shelf)` in task order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Shelf)> {
        self.shelves.iter().map(|(&t, s)| (t, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdc_types::{DeviceId, MessageId, RoundId, SimInstant, StorageKey};

    fn msg(task: u64, i: u64) -> Message {
        Message::model_update(
            MessageId(i),
            TaskId(task),
            DeviceId(i),
            RoundId(0),
            10,
            StorageKey::for_update(TaskId(task), RoundId(0), DeviceId(i)),
            SimInstant::EPOCH,
        )
    }

    #[test]
    fn routes_by_task_id() {
        let mut sorter = Sorter::new();
        sorter.route(msg(1, 0));
        sorter.route(msg(2, 1));
        sorter.route(msg(1, 2));
        assert_eq!(sorter.len(), 2);
        assert_eq!(sorter.shelf(TaskId(1)).unwrap().len(), 2);
        assert_eq!(sorter.shelf(TaskId(2)).unwrap().len(), 1);
        assert!(sorter.shelf(TaskId(3)).is_none());
    }

    #[test]
    fn shelves_isolate_tasks() {
        let mut sorter = Sorter::new();
        sorter.route(msg(1, 0));
        sorter.route(msg(2, 1));
        let taken = sorter.shelf_mut(TaskId(1)).unwrap().take(10);
        assert_eq!(taken.len(), 1);
        // Task 2's shelf is untouched.
        assert_eq!(sorter.shelf(TaskId(2)).unwrap().len(), 1);
    }

    #[test]
    fn ensure_shelf_is_idempotent() {
        let mut sorter = Sorter::new();
        sorter.ensure_shelf(TaskId(5));
        sorter.ensure_shelf(TaskId(5));
        assert_eq!(sorter.len(), 1);
        assert!(sorter.shelf(TaskId(5)).unwrap().is_empty());
    }
}
