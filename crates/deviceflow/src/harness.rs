//! A standalone event-loop harness for driving DeviceFlow without the full
//! platform (used by unit tests and the Fig 10 / Table II experiment
//! binaries).

use simdc_simrt::{Engine, EngineCtx, RngStream, World};
use simdc_types::{Message, RoundId, SimInstant, TaskId};

use crate::controller::{DeliveredBatch, DeviceFlow, FlowEvent};

struct HarnessWorld {
    flow: DeviceFlow,
    rng: RngStream,
    delivered: Vec<DeliveredBatch>,
}

impl World for HarnessWorld {
    type Event = FlowEvent;
    fn handle(&mut self, ctx: &mut EngineCtx<'_, FlowEvent>, event: FlowEvent) {
        let (scheduled, delivered) = self.flow.on_event(ctx.now(), event, &mut self.rng);
        for (at, ev) in scheduled {
            ctx.schedule_at(at, ev);
        }
        self.delivered.extend(delivered);
    }
}

/// Drives a [`DeviceFlow`] on its own discrete-event engine.
#[derive(Debug)]
pub struct FlowHarness {
    engine: Engine<HarnessWorld>,
}

impl std::fmt::Debug for HarnessWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HarnessWorld")
            .field("delivered", &self.delivered.len())
            .finish_non_exhaustive()
    }
}

impl FlowHarness {
    /// Wraps a controller and RNG stream.
    #[must_use]
    pub fn new(flow: DeviceFlow, rng: RngStream) -> Self {
        FlowHarness {
            engine: Engine::new(HarnessWorld {
                flow,
                rng,
                delivered: Vec::new(),
            }),
        }
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimInstant {
        self.engine.now()
    }

    /// Schedules a message ingestion at `at`.
    pub fn ingest_at(&mut self, at: SimInstant, message: Message) {
        self.engine.schedule_at(at, FlowEvent::Ingest(message));
    }

    /// Signals a round start at the current time.
    pub fn round_started(&mut self, task: TaskId, round: RoundId) {
        self.engine
            .schedule_at(self.engine.now(), FlowEvent::RoundStarted { task, round });
    }

    /// Schedules a round-completion signal at `at`.
    pub fn round_completed_at(&mut self, at: SimInstant, task: TaskId, round: RoundId) {
        self.engine
            .schedule_at(at, FlowEvent::RoundCompleted { task, round });
    }

    /// Runs until no events remain. Returns events executed.
    pub fn run(&mut self) -> u64 {
        self.engine.run()
    }

    /// Executes a single event. Returns `false` when the queue is empty.
    ///
    /// Together with [`FlowHarness::next_event_at`] this lets a caller
    /// advance the flow *just* until some condition (e.g. an aggregation
    /// trigger) is met, without running the clock past it.
    pub fn step(&mut self) -> bool {
        self.engine.step()
    }

    /// Timestamp of the next pending event.
    #[must_use]
    pub fn next_event_at(&self) -> Option<SimInstant> {
        self.engine.next_event_at()
    }

    /// Runs events up to `deadline` and advances the clock there.
    pub fn run_until(&mut self, deadline: SimInstant) -> u64 {
        self.engine.run_until(deadline)
    }

    /// Everything delivered downstream so far, in delivery order.
    #[must_use]
    pub fn delivered(&self) -> &[DeliveredBatch] {
        &self.engine.world().delivered
    }

    /// The wrapped controller.
    #[must_use]
    pub fn flow(&self) -> &DeviceFlow {
        &self.engine.world().flow
    }

    /// Mutable access to the wrapped controller (e.g. to register tasks
    /// after construction).
    pub fn flow_mut(&mut self) -> &mut DeviceFlow {
        &mut self.engine.world_mut().flow
    }

    /// Total messages delivered downstream.
    #[must_use]
    pub fn delivered_messages(&self) -> u64 {
        self.delivered()
            .iter()
            .map(|b| b.messages.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::TrafficFunction;
    use crate::strategy::{DispatchStrategy, Dropout, TimeSpec};
    use simdc_simrt::pearson_correlation;
    use simdc_types::{DeviceId, MessageId, SimDuration, StorageKey};

    fn msg(i: u64, at: SimInstant) -> Message {
        Message::model_update(
            MessageId(i),
            TaskId(1),
            DeviceId(i),
            RoundId(0),
            10,
            StorageKey::for_update(TaskId(1), RoundId(0), DeviceId(i)),
            at,
        )
    }

    #[test]
    fn end_to_end_interval_dispatch_tracks_curve() {
        let (function, domain) = TrafficFunction::right_tailed_normal(1.0);
        let mut flow = DeviceFlow::new();
        flow.register_task(
            TaskId(1),
            DispatchStrategy::TimeInterval {
                function: function.clone(),
                domain,
                start: TimeSpec::Relative(SimDuration::ZERO),
                interval: SimDuration::from_secs(60),
                dropout: Dropout::NONE,
            },
        )
        .unwrap();
        let mut harness = FlowHarness::new(flow, RngStream::from_seed(1));
        let t0 = SimInstant::EPOCH;
        for i in 0..10_000 {
            harness.ingest_at(t0, msg(i, t0));
        }
        harness.round_completed_at(t0 + SimDuration::from_micros(1), TaskId(1), RoundId(0));
        harness.run();
        assert_eq!(harness.delivered_messages(), 10_000);

        // Reconstruct per-point send amounts and compare against the curve.
        let sends: Vec<(f64, f64)> = harness
            .delivered()
            .iter()
            .map(|b| (b.at.as_secs_f64(), b.messages.len() as f64))
            .collect();
        let xs: Vec<f64> = sends
            .iter()
            .map(|&(t, _)| function.eval(domain.lerp(t / 60.0)))
            .collect();
        let ys: Vec<f64> = sends.iter().map(|&(_, y)| y).collect();
        let r = pearson_correlation(&xs, &ys);
        assert!(r > 0.99, "dispatch/curve correlation {r}");
        // All sends happen within the 60 s interval (plus epsilon).
        assert!(sends.iter().all(|&(t, _)| t <= 61.0));
    }

    #[test]
    fn realtime_sequence_cycles_until_task_done() {
        let mut flow = DeviceFlow::new();
        flow.register_task(
            TaskId(1),
            DispatchStrategy::RealTimeAccumulated {
                thresholds: vec![20, 100, 50],
                failure_prob: 0.0,
            },
        )
        .unwrap();
        let mut harness = FlowHarness::new(flow, RngStream::from_seed(2));
        harness.round_started(TaskId(1), RoundId(0));
        let t0 = SimInstant::EPOCH;
        for i in 0..340 {
            harness.ingest_at(t0 + SimDuration::from_millis(i * 10), msg(i, t0));
        }
        harness.run();
        let sizes: Vec<usize> = harness
            .delivered()
            .iter()
            .map(|b| b.messages.len())
            .collect();
        // 340 = 20 + 100 + 50 + 20 + 100 + 50 (full double cycle).
        assert_eq!(sizes, vec![20, 100, 50, 20, 100, 50]);
    }

    #[test]
    fn dropout_probability_reduces_deliveries() {
        let mut flow = DeviceFlow::new();
        flow.register_task(
            TaskId(1),
            DispatchStrategy::RealTimeAccumulated {
                thresholds: vec![1],
                failure_prob: 0.9,
            },
        )
        .unwrap();
        let mut harness = FlowHarness::new(flow, RngStream::from_seed(3));
        harness.round_started(TaskId(1), RoundId(0));
        let t0 = SimInstant::EPOCH;
        for i in 0..1_000 {
            harness.ingest_at(t0, msg(i, t0));
        }
        harness.run();
        let delivered = harness.delivered_messages();
        assert!(
            (60..140).contains(&delivered),
            "≈10% of 1000 should survive, got {delivered}"
        );
        let stats = harness.flow().stats(TaskId(1)).unwrap();
        assert_eq!(stats.dispatched + stats.dropped, 1_000);
    }
}
