//! The DeviceFlow controller: Sorter + per-task Dispatchers behind one
//! event-driven façade.

use std::collections::BTreeMap;

use simdc_simrt::{Counter, RngStream};
use simdc_types::{Message, Result, RoundId, SimInstant, SimdcError, TaskId};

use crate::dispatcher::{DispatchBatch, Dispatcher};
use crate::shelf::Shelf;
use crate::sorter::Sorter;
use crate::strategy::DispatchStrategy;
use crate::DEFAULT_CAPACITY_PER_SEC;

/// Events DeviceFlow reacts to. The composition root (platform or
/// [`crate::FlowHarness`]) owns the event queue; DeviceFlow returns
/// follow-up events to schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowEvent {
    /// A device→cloud message arrived from a computation cluster.
    Ingest(Message),
    /// A task's round began (activates real-time strategies).
    RoundStarted {
        /// The task.
        task: TaskId,
        /// The starting round.
        round: RoundId,
    },
    /// A task's round finished on the compute side (activates rule-based
    /// strategies).
    RoundCompleted {
        /// The task.
        task: TaskId,
        /// The finished round.
        round: RoundId,
    },
    /// A scheduled dispatch for `task` came due.
    DispatchDue {
        /// The task.
        task: TaskId,
        /// Dispatcher-local sequence number.
        seq: u64,
    },
}

/// A batch DeviceFlow released to the downstream cloud service.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveredBatch {
    /// The owning task.
    pub task: TaskId,
    /// Release time.
    pub at: SimInstant,
    /// Surviving messages.
    pub messages: Vec<Message>,
    /// Messages lost to dropout simulation.
    pub dropped: u64,
}

/// Per-task traffic statistics.
#[derive(Debug, Clone)]
pub struct FlowStats {
    /// Messages received from compute clusters.
    pub received: u64,
    /// Messages delivered downstream.
    pub dispatched: u64,
    /// Messages dropped by dropout simulation.
    pub dropped: u64,
    /// Cumulative dispatch history (for Fig 10-style plots).
    pub send_history: Counter,
}

impl FlowStats {
    fn new(task: TaskId) -> Self {
        FlowStats {
            received: 0,
            dispatched: 0,
            dropped: 0,
            send_history: Counter::new(format!("{task}/dispatched")),
        }
    }
}

/// The device-behavior traffic controller (Fig 4).
#[derive(Debug)]
pub struct DeviceFlow {
    sorter: Sorter,
    dispatchers: BTreeMap<TaskId, Dispatcher>,
    stats: BTreeMap<TaskId, FlowStats>,
    capacity_per_sec: u64,
}

impl Default for DeviceFlow {
    fn default() -> Self {
        DeviceFlow::new()
    }
}

impl DeviceFlow {
    /// Creates a controller with the default 700 msg/s capacity.
    #[must_use]
    pub fn new() -> Self {
        DeviceFlow::with_capacity(DEFAULT_CAPACITY_PER_SEC)
    }

    /// Creates a controller with an explicit single-threaded transmission
    /// capacity (messages per second).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_per_sec` is zero.
    #[must_use]
    pub fn with_capacity(capacity_per_sec: u64) -> Self {
        assert!(capacity_per_sec > 0, "capacity must be positive");
        DeviceFlow {
            sorter: Sorter::new(),
            dispatchers: BTreeMap::new(),
            stats: BTreeMap::new(),
            capacity_per_sec,
        }
    }

    /// Registers a task's dispatch strategy (stored in the Strategy module
    /// of Fig 4).
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::InvalidStrategy`] for invalid strategies or a
    /// duplicate registration.
    pub fn register_task(&mut self, task: TaskId, strategy: DispatchStrategy) -> Result<()> {
        if self.dispatchers.contains_key(&task) {
            return Err(SimdcError::InvalidStrategy(format!(
                "task {task} already has a strategy registered"
            )));
        }
        let dispatcher = Dispatcher::new(task, strategy, self.capacity_per_sec)?;
        self.sorter.ensure_shelf(task);
        self.dispatchers.insert(task, dispatcher);
        self.stats.insert(task, FlowStats::new(task));
        Ok(())
    }

    /// Removes a finished task's dispatcher and shelf state, returning its
    /// final statistics.
    pub fn deregister_task(&mut self, task: TaskId) -> Option<FlowStats> {
        self.dispatchers.remove(&task);
        self.stats.remove(&task)
    }

    /// Handles one event, returning `(events to schedule, batches released
    /// downstream)`.
    pub fn on_event(
        &mut self,
        now: SimInstant,
        event: FlowEvent,
        rng: &mut RngStream,
    ) -> (Vec<(SimInstant, FlowEvent)>, Vec<DeliveredBatch>) {
        match event {
            FlowEvent::Ingest(message) => self.on_ingest(now, message, rng),
            FlowEvent::RoundStarted { task, .. } => self.on_round_started(now, task, rng),
            FlowEvent::RoundCompleted { task, .. } => self.on_round_completed(now, task),
            FlowEvent::DispatchDue { task, seq } => self.on_due(now, task, seq, rng),
        }
    }

    fn on_ingest(
        &mut self,
        now: SimInstant,
        message: Message,
        rng: &mut RngStream,
    ) -> (Vec<(SimInstant, FlowEvent)>, Vec<DeliveredBatch>) {
        let task = message.task;
        self.sorter.route(message);
        if let Some(stats) = self.stats.get_mut(&task) {
            stats.received += 1;
        }
        let Some(dispatcher) = self.dispatchers.get_mut(&task) else {
            return (Vec::new(), Vec::new());
        };
        let shelf = self
            .sorter
            .shelf_mut(task)
            .expect("route created the shelf");
        let batches = dispatcher.on_ingest(now, shelf, rng);
        (Vec::new(), self.record_batches(task, batches))
    }

    fn on_round_started(
        &mut self,
        now: SimInstant,
        task: TaskId,
        rng: &mut RngStream,
    ) -> (Vec<(SimInstant, FlowEvent)>, Vec<DeliveredBatch>) {
        let Some(dispatcher) = self.dispatchers.get_mut(&task) else {
            return (Vec::new(), Vec::new());
        };
        let shelf = self.sorter.ensure_shelf(task);
        let batches = dispatcher.on_round_started(now, shelf, rng);
        (Vec::new(), self.record_batches(task, batches))
    }

    fn on_round_completed(
        &mut self,
        now: SimInstant,
        task: TaskId,
    ) -> (Vec<(SimInstant, FlowEvent)>, Vec<DeliveredBatch>) {
        let Some(dispatcher) = self.dispatchers.get_mut(&task) else {
            return (Vec::new(), Vec::new());
        };
        let shelf = self.sorter.ensure_shelf(task);
        match dispatcher.on_round_completed(now, shelf) {
            Ok(due) => (
                due.into_iter()
                    .map(|(at, seq)| (at, FlowEvent::DispatchDue { task, seq }))
                    .collect(),
                Vec::new(),
            ),
            Err(_) => (Vec::new(), Vec::new()),
        }
    }

    fn on_due(
        &mut self,
        now: SimInstant,
        task: TaskId,
        seq: u64,
        rng: &mut RngStream,
    ) -> (Vec<(SimInstant, FlowEvent)>, Vec<DeliveredBatch>) {
        let Some(dispatcher) = self.dispatchers.get_mut(&task) else {
            return (Vec::new(), Vec::new());
        };
        let shelf = self.sorter.ensure_shelf(task);
        let (batch, followups) = dispatcher.on_due(now, seq, shelf, rng);
        let scheduled = followups
            .into_iter()
            .map(|(at, seq)| (at, FlowEvent::DispatchDue { task, seq }))
            .collect();
        let delivered = match batch {
            Some(b) => self.record_batches(task, vec![b]),
            None => Vec::new(),
        };
        (scheduled, delivered)
    }

    fn record_batches(&mut self, task: TaskId, batches: Vec<DispatchBatch>) -> Vec<DeliveredBatch> {
        let mut delivered = Vec::with_capacity(batches.len());
        for b in batches {
            delivered.push(DeliveredBatch {
                task,
                at: b.at,
                messages: b.messages,
                dropped: b.dropped,
            });
        }
        if let Some(stats) = self.stats.get_mut(&task) {
            for b in &delivered {
                stats.dispatched += b.messages.len() as u64;
                stats.dropped += b.dropped;
                stats.send_history.add(b.at, b.messages.len() as u64);
            }
        }
        delivered
    }

    /// The shelf of a task, if it exists.
    #[must_use]
    pub fn shelf(&self, task: TaskId) -> Option<&Shelf> {
        self.sorter.shelf(task)
    }

    /// Statistics of a task, if registered.
    #[must_use]
    pub fn stats(&self, task: TaskId) -> Option<&FlowStats> {
        self.stats.get(&task)
    }

    /// The configured transmission capacity.
    #[must_use]
    pub fn capacity_per_sec(&self) -> u64 {
        self.capacity_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdc_types::{DeviceId, MessageId, StorageKey};

    fn msg(task: u64, i: u64, at: SimInstant) -> Message {
        Message::model_update(
            MessageId(i),
            TaskId(task),
            DeviceId(i),
            RoundId(0),
            10,
            StorageKey::for_update(TaskId(task), RoundId(0), DeviceId(i)),
            at,
        )
    }

    #[test]
    fn register_rejects_duplicates_and_invalid() {
        let mut flow = DeviceFlow::new();
        flow.register_task(TaskId(1), DispatchStrategy::immediate())
            .unwrap();
        assert!(flow
            .register_task(TaskId(1), DispatchStrategy::immediate())
            .is_err());
        assert!(flow
            .register_task(
                TaskId(2),
                DispatchStrategy::RealTimeAccumulated {
                    thresholds: vec![],
                    failure_prob: 0.0
                }
            )
            .is_err());
    }

    #[test]
    fn immediate_strategy_forwards_each_message() {
        let mut flow = DeviceFlow::new();
        let mut rng = RngStream::from_seed(1);
        flow.register_task(TaskId(1), DispatchStrategy::immediate())
            .unwrap();
        let t0 = SimInstant::EPOCH;
        flow.on_event(
            t0,
            FlowEvent::RoundStarted {
                task: TaskId(1),
                round: RoundId(0),
            },
            &mut rng,
        );
        let (sched, delivered) = flow.on_event(t0, FlowEvent::Ingest(msg(1, 0, t0)), &mut rng);
        assert!(sched.is_empty());
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].messages.len(), 1);
        let stats = flow.stats(TaskId(1)).unwrap();
        assert_eq!(stats.received, 1);
        assert_eq!(stats.dispatched, 1);
    }

    #[test]
    fn unregistered_tasks_buffer_without_dispatch() {
        let mut flow = DeviceFlow::new();
        let mut rng = RngStream::from_seed(2);
        let (sched, delivered) = flow.on_event(
            SimInstant::EPOCH,
            FlowEvent::Ingest(msg(9, 0, SimInstant::EPOCH)),
            &mut rng,
        );
        assert!(sched.is_empty());
        assert!(delivered.is_empty());
        assert_eq!(flow.shelf(TaskId(9)).unwrap().len(), 1);
        assert!(flow.stats(TaskId(9)).is_none());
    }

    #[test]
    fn tasks_are_isolated() {
        let mut flow = DeviceFlow::new();
        let mut rng = RngStream::from_seed(3);
        flow.register_task(
            TaskId(1),
            DispatchStrategy::RealTimeAccumulated {
                thresholds: vec![2],
                failure_prob: 0.0,
            },
        )
        .unwrap();
        flow.register_task(
            TaskId(2),
            DispatchStrategy::RealTimeAccumulated {
                thresholds: vec![2],
                failure_prob: 0.0,
            },
        )
        .unwrap();
        let t0 = SimInstant::EPOCH;
        for task in [1u64, 2] {
            flow.on_event(
                t0,
                FlowEvent::RoundStarted {
                    task: TaskId(task),
                    round: RoundId(0),
                },
                &mut rng,
            );
        }
        // One message per task: neither reaches its threshold of 2.
        let (_, d1) = flow.on_event(t0, FlowEvent::Ingest(msg(1, 0, t0)), &mut rng);
        let (_, d2) = flow.on_event(t0, FlowEvent::Ingest(msg(2, 1, t0)), &mut rng);
        assert!(d1.is_empty() && d2.is_empty());
        // Task 1's second message triggers only task 1's dispatcher.
        let (_, d3) = flow.on_event(t0, FlowEvent::Ingest(msg(1, 2, t0)), &mut rng);
        assert_eq!(d3.len(), 1);
        assert_eq!(d3[0].task, TaskId(1));
        assert_eq!(flow.shelf(TaskId(2)).unwrap().len(), 1);
    }

    #[test]
    fn round_completed_schedules_due_events() {
        use crate::strategy::{Dropout, TimePointRule, TimeSpec};
        let mut flow = DeviceFlow::new();
        let mut rng = RngStream::from_seed(4);
        flow.register_task(
            TaskId(1),
            DispatchStrategy::TimePoints {
                points: vec![TimePointRule {
                    at: TimeSpec::Relative(simdc_types::SimDuration::from_secs(3)),
                    count: 1,
                    dropout: Dropout::NONE,
                }],
            },
        )
        .unwrap();
        let t0 = SimInstant::EPOCH;
        flow.on_event(t0, FlowEvent::Ingest(msg(1, 0, t0)), &mut rng);
        let (sched, delivered) = flow.on_event(
            t0,
            FlowEvent::RoundCompleted {
                task: TaskId(1),
                round: RoundId(0),
            },
            &mut rng,
        );
        assert!(delivered.is_empty());
        assert_eq!(sched.len(), 1);
        let (at, ev) = &sched[0];
        assert_eq!(*at, t0 + simdc_types::SimDuration::from_secs(3));
        // Fire it.
        let (_, delivered) = flow.on_event(*at, ev.clone(), &mut rng);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].messages.len(), 1);
    }

    #[test]
    fn deregister_returns_final_stats() {
        let mut flow = DeviceFlow::new();
        let mut rng = RngStream::from_seed(5);
        flow.register_task(TaskId(1), DispatchStrategy::immediate())
            .unwrap();
        let t0 = SimInstant::EPOCH;
        flow.on_event(
            t0,
            FlowEvent::RoundStarted {
                task: TaskId(1),
                round: RoundId(0),
            },
            &mut rng,
        );
        flow.on_event(t0, FlowEvent::Ingest(msg(1, 0, t0)), &mut rng);
        let stats = flow.deregister_task(TaskId(1)).unwrap();
        assert_eq!(stats.dispatched, 1);
        assert!(flow.stats(TaskId(1)).is_none());
    }
}
