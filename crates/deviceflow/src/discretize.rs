//! AUC-based discretization of rate functions into time-point plans.
//!
//! §V-B's recipe: (1) equate the pending message volume with the total area
//! under the user's curve, (2) pick a discrete step small enough that no
//! single point exceeds DeviceFlow's transmission capacity, (3) assign each
//! step the message count proportional to its share of the AUC, taking the
//! step's start as its transmission time. The function domain is scaled
//! onto the user's actual dispatch interval.

use serde::{Deserialize, Serialize};
use simdc_simrt::pearson_correlation;
use simdc_types::{Result, SimDuration, SimdcError};

use crate::function::{Domain, TrafficFunction};

/// One discrete transmission: `count` messages at `offset` from the start
/// of the dispatch interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DispatchPoint {
    /// Offset from interval start.
    pub offset: SimDuration,
    /// Messages to send at this point.
    pub count: u64,
}

/// A discretized dispatch schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchPlan {
    points: Vec<DispatchPoint>,
    interval: SimDuration,
    step: SimDuration,
    volume: u64,
}

impl DispatchPlan {
    /// The scheduled points in time order (points with zero count are
    /// retained so the plan samples the curve uniformly).
    #[must_use]
    pub fn points(&self) -> &[DispatchPoint] {
        &self.points
    }

    /// The real-time length the plan spans.
    #[must_use]
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The discrete step between points.
    #[must_use]
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// Total messages scheduled (equals the requested volume exactly).
    #[must_use]
    pub fn volume(&self) -> u64 {
        self.volume
    }

    /// Largest single-point send.
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.points.iter().map(|p| p.count).max().unwrap_or(0)
    }

    /// Pearson correlation between the planned per-point amounts and the
    /// source curve sampled at the same (scaled) offsets — Table II's
    /// similarity measure.
    #[must_use]
    pub fn correlation_with(&self, function: &TrafficFunction, domain: &Domain) -> f64 {
        let interval_secs = self.interval.as_secs_f64();
        if interval_secs == 0.0 {
            return 0.0;
        }
        // Each point's count is the bin's AUC mass, so the fairest curve
        // sample is the bin midpoint (the dispatch itself still fires at
        // the bin start, per §V-B).
        let half_step = self.step.as_secs_f64() / 2.0;
        let xs: Vec<f64> = self
            .points
            .iter()
            .map(|p| {
                let frac = (p.offset.as_secs_f64() + half_step) / interval_secs;
                function.eval(domain.lerp(frac))
            })
            .collect();
        let ys: Vec<f64> = self.points.iter().map(|p| p.count as f64).collect();
        pearson_correlation(&xs, &ys)
    }
}

/// Discretizes `function` over `domain`, scaled to `interval`, delivering
/// exactly `volume` messages with no point exceeding `capacity` messages.
///
/// # Errors
///
/// Returns [`SimdcError::InvalidStrategy`] when the function violates the
/// §V-B contract, the curve has zero area (nothing to apportion), or the
/// capacity is zero / infeasibly small.
pub fn discretize(
    function: &TrafficFunction,
    domain: &Domain,
    interval: SimDuration,
    volume: u64,
    capacity: u64,
) -> Result<DispatchPlan> {
    use SimdcError::InvalidStrategy;
    function.validate_on(domain)?;
    if interval.is_zero() {
        return Err(InvalidStrategy("dispatch interval must be positive".into()));
    }
    if capacity == 0 {
        return Err(InvalidStrategy(
            "transmission capacity must be positive".into(),
        ));
    }
    if volume == 0 {
        return Ok(DispatchPlan {
            points: Vec::new(),
            interval,
            step: interval,
            volume: 0,
        });
    }

    // Start from a reasonably dense grid and refine until the per-point
    // peak fits the capacity ("the interval is sufficiently small", §V-B).
    let mut n: usize = 64.min(volume as usize).max(1);
    const MAX_POINTS: usize = 1 << 20;
    loop {
        let shares = auc_shares(function, domain, n)?;
        let counts = largest_remainder(&shares, volume);
        let peak = counts.iter().copied().max().unwrap_or(0);
        if peak <= capacity {
            let step = interval / n as u64;
            // Offsets are apportioned as `interval · i / n` (in u128 so a
            // long interval times a dense grid cannot overflow) rather
            // than `step · i`: the truncated step would shift every point
            // early by up to `i` ticks, clustering the whole grid at the
            // front of the interval whenever `n` does not divide it.
            // Distributing the remainder keeps the last bin's start
            // within one tick of `interval · (n-1) / n` exactly.
            let grid_offset = |i: usize| {
                let micros = u128::from(interval.as_micros()) * i as u128 / n as u128;
                SimDuration::from_micros(micros as u64)
            };
            let points = counts
                .into_iter()
                .enumerate()
                .map(|(i, count)| DispatchPoint {
                    offset: grid_offset(i),
                    count,
                })
                .collect();
            return Ok(DispatchPlan {
                points,
                interval,
                step,
                volume,
            });
        }
        if n >= MAX_POINTS {
            return Err(InvalidStrategy(format!(
                "volume {volume} cannot respect capacity {capacity} even with {n} points \
                 (peak {peak}); lower the volume or raise the capacity"
            )));
        }
        n = (n * 2).min(MAX_POINTS);
    }
}

/// Per-subinterval AUC shares (normalized to sum 1), using an 8-subsample
/// trapezoid per subinterval so piecewise-continuous curves integrate
/// acceptably.
fn auc_shares(function: &TrafficFunction, domain: &Domain, n: usize) -> Result<Vec<f64>> {
    const SUB: usize = 8;
    let mut areas = Vec::with_capacity(n);
    let mut total = 0.0;
    for i in 0..n {
        let lo = i as f64 / n as f64;
        let hi = (i + 1) as f64 / n as f64;
        let mut area = 0.0;
        let h = (hi - lo) / SUB as f64;
        for s in 0..SUB {
            let a = domain.lerp(lo + h * s as f64);
            let b = domain.lerp(lo + h * (s + 1) as f64);
            area += 0.5 * (function.eval(a) + function.eval(b)) * (b - a);
        }
        areas.push(area);
        total += area;
    }
    if total <= 0.0 {
        return Err(SimdcError::InvalidStrategy(
            "rate function has zero area on the domain".into(),
        ));
    }
    Ok(areas.into_iter().map(|a| a / total).collect())
}

/// Apportions `volume` across `shares` (which sum to 1) with the largest-
/// remainder method, so the result sums to `volume` exactly.
fn largest_remainder(shares: &[f64], volume: u64) -> Vec<u64> {
    let mut counts: Vec<u64> = Vec::with_capacity(shares.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(shares.len());
    let mut assigned: u64 = 0;
    for (i, &s) in shares.iter().enumerate() {
        let exact = s * volume as f64;
        let floor = exact.floor() as u64;
        counts.push(floor);
        assigned += floor;
        remainders.push((i, exact - floor as f64));
    }
    let mut leftover = volume - assigned;
    // Stable tie-break on index keeps the apportionment deterministic.
    remainders.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("remainders are finite")
            .then(a.0.cmp(&b.0))
    });
    for &(idx, _) in &remainders {
        if leftover == 0 {
            break;
        }
        counts[idx] += 1;
        leftover -= 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minute() -> SimDuration {
        SimDuration::from_secs(60)
    }

    #[test]
    fn plan_conserves_volume_exactly() {
        let (f, d) = TrafficFunction::right_tailed_normal(1.0);
        let plan = discretize(&f, &d, minute(), 10_000, 700).unwrap();
        let total: u64 = plan.points().iter().map(|p| p.count).sum();
        assert_eq!(total, 10_000);
        assert_eq!(plan.volume(), 10_000);
    }

    #[test]
    fn peak_respects_capacity() {
        let (f, d) = TrafficFunction::right_tailed_normal(1.0);
        let plan = discretize(&f, &d, minute(), 10_000, 700).unwrap();
        assert!(plan.peak() <= 700, "peak {}", plan.peak());
    }

    #[test]
    fn offsets_are_increasing_and_within_interval() {
        let (f, d) = TrafficFunction::right_tailed_normal(2.0);
        let plan = discretize(&f, &d, minute(), 5_000, 700).unwrap();
        for pair in plan.points().windows(2) {
            assert!(pair[0].offset < pair[1].offset);
        }
        assert!(plan.points().last().unwrap().offset < minute());
    }

    #[test]
    fn grid_spans_the_interval_without_truncation_drift() {
        // 7 µs over a grid the point count does not divide: the old
        // `step * i` offsets truncated `step` first, clustering every
        // point early and leaving the tail of the interval empty.
        let f = TrafficFunction::Constant(1.0);
        let d = Domain::new(0.0, 1.0).unwrap();
        let interval = SimDuration::from_micros(1_000_003); // prime, n ∤ interval
        let plan = discretize(&f, &d, interval, 640, 700).unwrap();
        let n = plan.points().len() as u64;
        assert!(n > 1);
        // The last bin must start within one tick of interval·(n-1)/n —
        // i.e. the grid reaches the end of the interval instead of
        // stopping `n` ticks short.
        let last = plan.points().last().unwrap().offset;
        let exact_last = interval.as_micros() * (n - 1) / n;
        assert!(
            last.as_micros() >= exact_last.saturating_sub(1),
            "grid stops early: last offset {last} vs exact {exact_last}µs"
        );
        assert!(last + plan.step() <= interval + SimDuration::from_micros(n));
        // Per-point drift never exceeds one tick anywhere on the grid.
        for (i, p) in plan.points().iter().enumerate() {
            let exact = interval.as_micros() * i as u64 / n;
            assert!(
                p.offset.as_micros().abs_diff(exact) <= 1,
                "point {i} drifted: {} vs {exact}",
                p.offset.as_micros()
            );
        }
    }

    #[test]
    fn table2_correlations_exceed_0_99() {
        let six_pi = 6.0 * std::f64::consts::PI;
        let cases: Vec<(TrafficFunction, Domain)> = vec![
            (
                TrafficFunction::Normal { sigma: 1.0 },
                Domain::new(-4.0, 4.0).unwrap(),
            ),
            (
                TrafficFunction::Normal { sigma: 2.0 },
                Domain::new(-4.0, 4.0).unwrap(),
            ),
            (TrafficFunction::SinPlus1, Domain::new(0.0, six_pi).unwrap()),
            (TrafficFunction::CosPlus1, Domain::new(0.0, six_pi).unwrap()),
            (TrafficFunction::Exp2, Domain::new(0.0, 3.0).unwrap()),
            (TrafficFunction::Exp10, Domain::new(0.0, 3.0).unwrap()),
        ];
        for (f, d) in cases {
            let plan = discretize(&f, &d, minute(), 10_000, 700).unwrap();
            let r = plan.correlation_with(&f, &d);
            assert!(r > 0.99, "{f:?}: r = {r}");
        }
    }

    #[test]
    fn capacity_forces_denser_grids() {
        let (f, d) = TrafficFunction::right_tailed_normal(1.0);
        let loose = discretize(&f, &d, minute(), 10_000, 700).unwrap();
        let tight = discretize(&f, &d, minute(), 10_000, 50).unwrap();
        assert!(tight.points().len() > loose.points().len());
        assert!(tight.peak() <= 50);
        let total: u64 = tight.points().iter().map(|p| p.count).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn zero_volume_gives_empty_plan() {
        let (f, d) = TrafficFunction::right_tailed_normal(1.0);
        let plan = discretize(&f, &d, minute(), 0, 700).unwrap();
        assert!(plan.points().is_empty());
        assert_eq!(plan.peak(), 0);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let (f, d) = TrafficFunction::right_tailed_normal(1.0);
        assert!(discretize(&f, &d, SimDuration::ZERO, 10, 700).is_err());
        assert!(discretize(&f, &d, minute(), 10, 0).is_err());
        let zero = TrafficFunction::Constant(0.0);
        assert!(discretize(&zero, &d, minute(), 10, 700).is_err());
    }

    #[test]
    fn uniform_curve_spreads_evenly() {
        let f = TrafficFunction::Constant(1.0);
        let d = Domain::new(0.0, 1.0).unwrap();
        let plan = discretize(&f, &d, minute(), 6_400, 700).unwrap();
        let counts: Vec<u64> = plan.points().iter().map(|p| p.count).collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1, "uniform apportionment: {min}..{max}");
    }

    #[test]
    fn largest_remainder_is_exact() {
        let shares = vec![0.5, 0.25, 0.25];
        // Exact quotas 3.5 / 1.75 / 1.75 → floors 3/1/1, two leftovers go to
        // the largest remainders (the 0.75s).
        assert_eq!(largest_remainder(&shares, 7), vec![3, 2, 2]);
        let shares = vec![1.0 / 3.0; 3];
        let counts = largest_remainder(&shares, 10);
        assert_eq!(counts.iter().sum::<u64>(), 10);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn function_strategy() -> impl Strategy<Value = (TrafficFunction, Domain)> {
        prop_oneof![
            (0.2f64..4.0).prop_map(|s| (
                TrafficFunction::Normal { sigma: s },
                Domain {
                    start: -3.0,
                    end: 3.0
                },
            )),
            (0.5f64..20.0).prop_map(|end| (TrafficFunction::SinPlus1, Domain { start: 0.0, end },)),
            (0.1f64..3.0).prop_map(|end| (TrafficFunction::Exp2, Domain { start: 0.0, end },)),
            (0.1f64..100.0).prop_map(|c| (
                TrafficFunction::Constant(c),
                Domain {
                    start: 0.0,
                    end: 1.0
                },
            )),
        ]
    }

    proptest! {
        /// Σ dispatched == volume, exactly, for any curve/volume/capacity.
        #[test]
        fn conservation(
            (function, domain) in function_strategy(),
            volume in 0u64..20_000,
            capacity in 1u64..2_000,
            interval_secs in 1u64..600,
        ) {
            let plan = discretize(
                &function,
                &domain,
                SimDuration::from_secs(interval_secs),
                volume,
                capacity,
            );
            // Tiny capacities with huge volumes may be infeasible; that
            // must surface as an error, never as silent loss.
            if let Ok(plan) = plan {
                let total: u64 = plan.points().iter().map(|p| p.count).sum();
                prop_assert_eq!(total, volume);
                prop_assert!(plan.peak() <= capacity);
                for pair in plan.points().windows(2) {
                    prop_assert!(pair[0].offset < pair[1].offset);
                }
            } else {
                prop_assert!(volume > capacity, "feasible inputs must not error");
            }
        }

        /// Largest-remainder apportionment is exact for any share vector.
        #[test]
        fn apportionment_exact(
            raw in proptest::collection::vec(0.01f64..10.0, 1..64),
            volume in 0u64..10_000,
        ) {
            let total: f64 = raw.iter().sum();
            let shares: Vec<f64> = raw.iter().map(|x| x / total).collect();
            let counts = largest_remainder(&shares, volume);
            prop_assert_eq!(counts.iter().sum::<u64>(), volume);
            prop_assert_eq!(counts.len(), shares.len());
        }
    }
}
