//! DeviceFlow: the programmable device-behavior traffic controller (§V).
//!
//! Edge devices upload results to storage and notify the cloud with small
//! messages; DeviceFlow sits between the two, buffering the messages and
//! releasing them according to a user-defined strategy — replaying the
//! request-traffic fluctuations and disconnections that large device fleets
//! exhibit in the real world.
//!
//! Architecture (Fig 4): the [`Sorter`] routes incoming messages to a
//! per-task [`Shelf`]; an independent per-task [`Dispatcher`] pulls pending
//! messages from its shelf and forwards them downstream according to the
//! task's [`DispatchStrategy`]:
//!
//! * **real-time accumulated** — flush after every `n` received messages
//!   (cycling a user sequence), with a per-message transmission-failure
//!   probability that simulates device dropouts;
//! * **rule-based, time points** — send fixed amounts at user-set relative
//!   or absolute times, capped by single-threaded transmission capacity
//!   (overflow spills into subsequent seconds, as in Fig 10(a/b));
//! * **rule-based, time interval** — a user-defined transmission-rate
//!   function `y = f(t)` (single-valued, bounded, non-negative, piecewise
//!   continuous) is discretized by area-under-curve ratios into a
//!   time-point plan (Fig 10(c/d), Table II).
//!
//! # Examples
//!
//! ```
//! use simdc_deviceflow::{DeviceFlow, DispatchStrategy, FlowHarness};
//! use simdc_simrt::RngStream;
//! use simdc_types::TaskId;
//!
//! let mut flow = DeviceFlow::new();
//! flow.register_task(
//!     TaskId(1),
//!     DispatchStrategy::RealTimeAccumulated {
//!         thresholds: vec![20, 100, 50],
//!         failure_prob: 0.0,
//!     },
//! )
//! .unwrap();
//! let harness = FlowHarness::new(flow, RngStream::from_seed(7));
//! // …ingest messages, run, inspect harness.delivered()…
//! # let _ = harness;
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod controller;
pub mod discretize;
pub mod dispatcher;
pub mod function;
pub mod harness;
pub mod shelf;
pub mod sorter;
pub mod strategy;

pub use controller::{DeliveredBatch, DeviceFlow, FlowEvent, FlowStats};
pub use discretize::{discretize, DispatchPlan, DispatchPoint};
pub use dispatcher::Dispatcher;
pub use function::{Domain, TrafficFunction};
pub use harness::FlowHarness;
pub use shelf::Shelf;
pub use sorter::Sorter;
pub use strategy::{DispatchStrategy, Dropout, TimePointRule, TimeSpec};

/// Default single-threaded transmission capacity of DeviceFlow, in
/// messages per second (§V-B: "e.g., 700 messages per second").
pub const DEFAULT_CAPACITY_PER_SEC: u64 = 700;
