//! Shelves: per-task message buffers.

use std::collections::VecDeque;

use simdc_types::{Message, TaskId};

/// The buffer holding a task's pending messages in arrival order.
#[derive(Debug, Clone, Default)]
pub struct Shelf {
    task: TaskId,
    queue: VecDeque<Message>,
    received_total: u64,
}

impl Shelf {
    /// Creates an empty shelf for `task`.
    #[must_use]
    pub fn new(task: TaskId) -> Self {
        Shelf {
            task,
            queue: VecDeque::new(),
            received_total: 0,
        }
    }

    /// The owning task.
    #[must_use]
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Buffers a message.
    pub fn push(&mut self, message: Message) {
        self.received_total += 1;
        self.queue.push_back(message);
    }

    /// Pops up to `n` messages in FIFO order.
    #[must_use]
    pub fn take(&mut self, n: usize) -> Vec<Message> {
        let n = n.min(self.queue.len());
        self.queue.drain(..n).collect()
    }

    /// Messages currently pending.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the shelf is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total messages ever received (including already dispatched ones).
    #[must_use]
    pub fn received_total(&self) -> u64 {
        self.received_total
    }

    /// Iterates over pending messages without consuming them.
    pub fn iter(&self) -> impl Iterator<Item = &Message> {
        self.queue.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdc_types::{DeviceId, MessageId, RoundId, SimInstant, StorageKey};

    fn msg(i: u64) -> Message {
        Message::model_update(
            MessageId(i),
            TaskId(1),
            DeviceId(i),
            RoundId(0),
            10,
            StorageKey::for_update(TaskId(1), RoundId(0), DeviceId(i)),
            SimInstant::EPOCH,
        )
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut shelf = Shelf::new(TaskId(1));
        for i in 0..5 {
            shelf.push(msg(i));
        }
        let taken = shelf.take(3);
        assert_eq!(
            taken.iter().map(|m| m.id.0).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(shelf.len(), 2);
        assert_eq!(shelf.received_total(), 5);
    }

    #[test]
    fn take_clamps_to_available() {
        let mut shelf = Shelf::new(TaskId(1));
        shelf.push(msg(0));
        let taken = shelf.take(10);
        assert_eq!(taken.len(), 1);
        assert!(shelf.is_empty());
        assert!(shelf.take(1).is_empty());
    }
}
