//! The elastic-tier autoscaler: target-utilization scaling with
//! hysteresis and a cost-budget cap.
//!
//! The paper's logical simulation runs on *elastic* k8s nodes (§IV-A);
//! this module supplies the policy that decides, at every scheduling
//! pass, whether the [`crate::NodePool`] should boot more nodes (queue
//! pressure above the target utilization), drain some (sustained
//! under-utilization, guarded by a hysteresis band and a cooldown), or
//! hold. Scale-out is demand-driven and immediate — blocked placements
//! should wait for one boot latency, not for a timer — while scale-in is
//! deliberately sluggish so bursty arrivals do not thrash the pool.
//!
//! The budget cap prices nodes with
//! [`crate::CostModel::node_hourly_cost`]: when
//! [`AutoscalerConfig::max_hourly_cost`] is set, the pool never holds
//! more nodes than that spend rate affords, however deep the queue gets.
//!
//! # Examples
//!
//! ```
//! use simdc_cluster::{Autoscaler, AutoscalerConfig, NodePool, ScalingAction};
//! use simdc_types::{ResourceBundle, SimDuration, SimInstant};
//!
//! let mut pool = NodePool::new(ResourceBundle::cores_gib(4, 4), 1, 8);
//! let mut scaler = Autoscaler::new(AutoscalerConfig::default());
//! let unit = ResourceBundle::cores_gib(1, 1);
//!
//! // 12 unit bundles of queued demand against 4 free units: boot nodes.
//! let action = scaler.assess(
//!     &mut pool,
//!     &unit,
//!     12,
//!     SimDuration::from_secs(45),
//!     1.0, // node_hourly_cost
//!     SimInstant::EPOCH,
//! );
//! let ScalingAction::ScaleUp { nodes, ready_at, .. } = action else {
//!     panic!("queue pressure must trigger a scale-up");
//! };
//! assert!(nodes >= 2);
//! // The capacity is only placeable after the boot latency elapses.
//! assert_eq!(pool.placeable(&unit), 4);
//! pool.advance_to(ready_at);
//! assert!(pool.placeable(&unit) >= 12);
//! ```

use serde::{Deserialize, Serialize};
use simdc_types::{ResourceBundle, Result, SimDuration, SimInstant, SimdcError};

use crate::node::NodePool;

/// Tunables of the autoscaling policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscalerConfig {
    /// Utilization the pool is scaled *toward*: scale-out provisions
    /// enough nodes that `(used + queued demand) / capacity` lands at this
    /// fraction, leaving headroom for jitter.
    pub target_utilization: f64,
    /// Scale-in only triggers while utilization sits *below* this
    /// fraction — the lower edge of the hysteresis band. Must be below
    /// [`AutoscalerConfig::target_utilization`].
    pub scale_in_threshold: f64,
    /// Minimum virtual time between scale-in decisions (scale-out is
    /// never delayed: demand waits on the boot latency only).
    pub scale_in_cooldown: SimDuration,
    /// Spend-rate budget: with `Some(c)`, the pool never holds more nodes
    /// than `c / node_hourly_cost` affords. `None` means uncapped (the
    /// node-count ceiling still applies).
    pub max_hourly_cost: Option<f64>,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            target_utilization: 0.70,
            scale_in_threshold: 0.30,
            scale_in_cooldown: SimDuration::from_mins(3),
            max_hourly_cost: None,
        }
    }
}

impl AutoscalerConfig {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` when the thresholds leave no hysteresis
    /// band (`0 < scale_in_threshold < target_utilization <= 1`) or the
    /// budget is not a positive finite number.
    pub fn validate(&self) -> Result<()> {
        use SimdcError::InvalidConfig;
        if !(self.target_utilization > 0.0 && self.target_utilization <= 1.0) {
            return Err(InvalidConfig(format!(
                "target_utilization must be in (0, 1], got {}",
                self.target_utilization
            )));
        }
        if !(self.scale_in_threshold >= 0.0 && self.scale_in_threshold < self.target_utilization) {
            return Err(InvalidConfig(format!(
                "scale_in_threshold must be in [0, target_utilization), got {}",
                self.scale_in_threshold
            )));
        }
        if let Some(budget) = self.max_hourly_cost {
            if !budget.is_finite() || budget <= 0.0 {
                return Err(InvalidConfig(format!(
                    "max_hourly_cost must be positive and finite, got {budget}"
                )));
            }
        }
        Ok(())
    }
}

/// What one [`Autoscaler::assess`] pass decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingAction {
    /// Booted `nodes` new nodes; their capacity becomes placeable at
    /// `ready_at`. `reclaimed` draining nodes additionally returned to
    /// ready service *immediately* — their capacity is placeable now, so
    /// the platform should re-run placement without waiting for
    /// `ready_at`.
    ScaleUp {
        /// Nodes that started booting.
        nodes: usize,
        /// Draining nodes returned to ready service right now.
        reclaimed: usize,
        /// When the booting nodes become ready.
        ready_at: SimInstant,
    },
    /// Returned `nodes` draining nodes to ready service with no boot
    /// needed: capacity reappeared *at this instant*. The platform must
    /// re-run placement immediately — treating this as a hold delays
    /// admission by a full dispatch tick.
    Reclaim {
        /// Draining nodes returned to ready service.
        nodes: usize,
    },
    /// Began draining `nodes` nodes (idle ones retire at the next
    /// lifecycle advance; busy ones once their allocations release).
    ScaleIn {
        /// Nodes marked draining.
        nodes: usize,
    },
    /// No change.
    Hold,
}

/// Accrues the running cost of the pool: every node-second — booting,
/// ready or draining — is billed at the model's hourly rate, pro rata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostMeter {
    accrued: f64,
    node_seconds: f64,
    last_at: SimInstant,
}

impl CostMeter {
    /// A meter starting at zero spend from `start`.
    #[must_use]
    pub fn new(start: SimInstant) -> Self {
        CostMeter {
            accrued: 0.0,
            node_seconds: 0.0,
            last_at: start,
        }
    }

    /// Bills `nodes` nodes for the wall of virtual time since the last
    /// accrual, then moves the accrual cursor to `now`. Instants before
    /// the cursor are ignored (time never rolls back).
    pub fn accrue(&mut self, nodes: usize, hourly_rate: f64, now: SimInstant) {
        if now <= self.last_at {
            return;
        }
        let secs = now.duration_since(self.last_at).as_secs_f64();
        self.node_seconds += nodes as f64 * secs;
        self.accrued += nodes as f64 * hourly_rate * (secs / 3_600.0);
        self.last_at = now;
    }

    /// Flushes the final partial interval — bills `nodes` up to `now` and
    /// returns the total spend. Call at scenario end (and on retire
    /// boundaries) so a run ending mid-hour still bills its tail:
    /// afterwards `accrued() == node_seconds() × hourly_rate / 3600`
    /// within float rounding, which `budget_capped` asserts.
    pub fn finalize(&mut self, nodes: usize, hourly_rate: f64, now: SimInstant) -> f64 {
        self.accrue(nodes, hourly_rate, now);
        self.accrued
    }

    /// Total spend so far.
    #[must_use]
    pub fn accrued(&self) -> f64 {
        self.accrued
    }

    /// Total billed node-seconds so far (the quantity `accrued()` prices).
    #[must_use]
    pub fn node_seconds(&self) -> f64 {
        self.node_seconds
    }

    /// The accrual cursor: the instant billing is complete up to.
    #[must_use]
    pub fn billed_to(&self) -> SimInstant {
        self.last_at
    }
}

/// The stateful policy: remembers the floor it must keep and its last
/// scale-in instant (the cooldown anchor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Autoscaler {
    config: AutoscalerConfig,
    /// Never drain below this many nodes (the pool's initial size).
    min_nodes: usize,
    last_scale_in: Option<SimInstant>,
}

impl Autoscaler {
    /// Creates a policy with a floor of one node (set the real floor with
    /// [`Autoscaler::with_min_nodes`]).
    #[must_use]
    pub fn new(config: AutoscalerConfig) -> Self {
        Autoscaler {
            config,
            min_nodes: 1,
            last_scale_in: None,
        }
    }

    /// Sets the node floor scale-in may never cross.
    #[must_use]
    pub fn with_min_nodes(mut self, min_nodes: usize) -> Self {
        self.min_nodes = min_nodes.max(1);
        self
    }

    /// The policy configuration.
    #[must_use]
    pub fn config(&self) -> &AutoscalerConfig {
        &self.config
    }

    /// The most nodes the budget allows the pool to hold, also capped by
    /// the pool's `max_nodes` ceiling.
    #[must_use]
    pub fn node_cap(&self, pool: &NodePool, node_hourly_cost: f64) -> usize {
        let mut cap = pool.max_nodes();
        if let Some(budget) = self.config.max_hourly_cost {
            if node_hourly_cost > 0.0 {
                cap = cap.min((budget / node_hourly_cost).floor() as usize);
            }
        }
        cap.max(self.min_nodes.min(pool.max_nodes()))
    }

    /// One policy pass: reacts to `demand_units` of queued unit-bundle
    /// demand (claims of pending tasks that could not be admitted) given
    /// the pool's current state, and applies the decision to the pool.
    ///
    /// Scale-out first reclaims draining nodes, then boots new ones with
    /// `boot_latency` charged before the capacity is placeable. Scale-in
    /// drains surplus nodes only when there is no queued demand, the
    /// utilization is below the hysteresis threshold and the cooldown has
    /// elapsed.
    pub fn assess(
        &mut self,
        pool: &mut NodePool,
        unit: &ResourceBundle,
        demand_units: u64,
        boot_latency: SimDuration,
        node_hourly_cost: f64,
        now: SimInstant,
    ) -> ScalingAction {
        let per_node = pool.template().max_bundles(unit);
        if per_node == 0 {
            return ScalingAction::Hold;
        }
        let cap = self.node_cap(pool, node_hourly_cost);

        if demand_units > 0 {
            // Capacity the queue will see once in-flight boots finish.
            let prospective = pool.prospective_units(unit);
            if demand_units > prospective {
                let deficit = demand_units - prospective;
                // Provision toward the target utilization, not 100%.
                let target_per_node = ((per_node as f64) * self.config.target_utilization).max(1.0);
                let mut need = (deficit as f64 / target_per_node).ceil() as usize;
                let reclaimed = pool.cancel_drain(need);
                need -= reclaimed;
                let headroom = cap.saturating_sub(pool.len());
                let booted = pool.scale_up(need.min(headroom), now + boot_latency);
                if booted > 0 {
                    return ScalingAction::ScaleUp {
                        nodes: booted,
                        reclaimed,
                        ready_at: now + boot_latency,
                    };
                }
                if reclaimed > 0 {
                    // The whole deficit was covered by reclaiming draining
                    // nodes: that capacity is placeable *now*, and the
                    // caller must re-run placement on it. (Previously this
                    // fell through to `Hold` and admission stalled for a
                    // dispatch tick.)
                    return ScalingAction::Reclaim { nodes: reclaimed };
                }
            } else if demand_units > (pool.booting_count() as u64).saturating_mul(per_node) {
                // Units fit in aggregate (demand <= prospective) yet
                // placement is still blocked: the demand is fragmented
                // across nodes. One extra node breaks the deadlock —
                // reclaiming a draining node if one exists, else booting
                // (bounded by the same caps). The guard fires whenever the
                // in-flight boots alone cannot cover the blocked demand;
                // gating on `booting_count() == 0` instead would stall
                // fragmented demand for a full boot latency even though
                // the nodes coming up can never satisfy it.
                if pool.cancel_drain(1) == 1 {
                    return ScalingAction::Reclaim { nodes: 1 };
                }
                if pool.len() < cap {
                    let booted = pool.scale_up(1, now + boot_latency);
                    if booted > 0 {
                        return ScalingAction::ScaleUp {
                            nodes: booted,
                            reclaimed: 0,
                            ready_at: now + boot_latency,
                        };
                    }
                }
            }
            return ScalingAction::Hold;
        }

        // No queued demand: consider scale-in, guarded by hysteresis and
        // cooldown.
        let utilization = pool.cpu_utilization();
        if utilization >= self.config.scale_in_threshold {
            return ScalingAction::Hold;
        }
        if let Some(last) = self.last_scale_in {
            if now.duration_since(last) < self.config.scale_in_cooldown {
                return ScalingAction::Hold;
            }
        }
        let ready = pool.ready_count();
        let free_units = pool.placeable(unit);
        let used_units = pool.unit_capacity(unit).saturating_sub(free_units);
        let desired = ((used_units as f64 / ((per_node as f64) * self.config.target_utilization))
            .ceil() as usize)
            .max(self.min_nodes)
            .min(cap);
        if ready > desired {
            let drained = pool.drain(ready - desired);
            if drained > 0 {
                self.last_scale_in = Some(now);
                return ScalingAction::ScaleIn { nodes: drained };
            }
        }
        ScalingAction::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> ResourceBundle {
        ResourceBundle::cores_gib(1, 1)
    }

    fn pool() -> NodePool {
        // 4-unit nodes, 2 initial, max 8.
        NodePool::new(ResourceBundle::cores_gib(4, 4), 2, 8)
    }

    fn t(secs: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs(secs)
    }

    const BOOT: SimDuration = SimDuration::from_secs(45);

    #[test]
    fn default_config_validates() {
        AutoscalerConfig::default().validate().unwrap();
    }

    #[test]
    fn inverted_hysteresis_band_rejected() {
        let bad = AutoscalerConfig {
            target_utilization: 0.3,
            scale_in_threshold: 0.5,
            ..AutoscalerConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = AutoscalerConfig {
            max_hourly_cost: Some(0.0),
            ..AutoscalerConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn queue_pressure_boots_nodes_with_latency() {
        let mut pool = pool();
        let mut scaler = Autoscaler::new(AutoscalerConfig::default()).with_min_nodes(2);
        let action = scaler.assess(&mut pool, &unit(), 20, BOOT, 1.0, t(0));
        let ScalingAction::ScaleUp {
            nodes,
            reclaimed,
            ready_at,
        } = action
        else {
            panic!("expected scale-up, got {action:?}");
        };
        assert_eq!(reclaimed, 0, "nothing was draining");
        assert!(nodes >= 4, "20 units over 8 free at 0.7 target: {nodes}");
        assert_eq!(ready_at, SimInstant::EPOCH + BOOT);
        assert_eq!(pool.placeable(&unit()), 8, "boot latency not charged");
        // A second pass at the same instant sees the in-flight boots and
        // holds instead of double-booting.
        assert_eq!(
            scaler.assess(&mut pool, &unit(), 20, BOOT, 1.0, t(0)),
            ScalingAction::Hold
        );
    }

    #[test]
    fn budget_caps_the_fleet() {
        let mut pool = pool();
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            max_hourly_cost: Some(3.0),
            ..AutoscalerConfig::default()
        })
        .with_min_nodes(2);
        assert_eq!(scaler.node_cap(&pool, 1.0), 3);
        // Huge demand still only affords one extra node at 1.0/h each.
        let action = scaler.assess(&mut pool, &unit(), 1_000, BOOT, 1.0, t(0));
        assert_eq!(
            action,
            ScalingAction::ScaleUp {
                nodes: 1,
                reclaimed: 0,
                ready_at: SimInstant::EPOCH + BOOT
            }
        );
        assert_eq!(pool.len(), 3);
        // At the cap, further pressure holds.
        assert_eq!(
            scaler.assess(&mut pool, &unit(), 1_000, BOOT, 1.0, t(60)),
            ScalingAction::Hold
        );
    }

    #[test]
    fn idle_pool_scales_in_with_hysteresis_and_cooldown() {
        let mut pool = pool();
        pool.scale_up(4, t(0));
        pool.advance_to(t(0));
        assert_eq!(pool.ready_count(), 6);
        let mut scaler = Autoscaler::new(AutoscalerConfig::default()).with_min_nodes(2);
        // Idle and under-utilized: drain down to the floor.
        let action = scaler.assess(&mut pool, &unit(), 0, BOOT, 1.0, t(600));
        assert_eq!(action, ScalingAction::ScaleIn { nodes: 4 });
        pool.advance_to(t(600));
        assert_eq!(pool.len(), 2);
        // Within the cooldown nothing further happens even if still idle.
        pool.scale_up(2, t(601));
        pool.advance_to(t(601));
        assert_eq!(
            scaler.assess(&mut pool, &unit(), 0, BOOT, 1.0, t(610)),
            ScalingAction::Hold
        );
        // After the cooldown the surplus drains again.
        assert!(matches!(
            scaler.assess(&mut pool, &unit(), 0, BOOT, 1.0, t(601 + 200)),
            ScalingAction::ScaleIn { .. }
        ));
    }

    #[test]
    fn busy_pool_does_not_scale_in() {
        let mut pool = pool();
        pool.place(&ResourceBundle::cores_gib(4, 4)).unwrap();
        // 50% utilization is above the 30% threshold: hold.
        let mut scaler = Autoscaler::new(AutoscalerConfig::default()).with_min_nodes(1);
        assert_eq!(
            scaler.assess(&mut pool, &unit(), 0, BOOT, 1.0, t(600)),
            ScalingAction::Hold
        );
    }

    #[test]
    fn demand_reclaims_draining_nodes_before_booting() {
        let mut pool = pool();
        pool.scale_up(2, t(0));
        pool.advance_to(t(0));
        pool.drain(2);
        assert_eq!(pool.ready_count(), 2);
        let mut scaler = Autoscaler::new(AutoscalerConfig::default()).with_min_nodes(2);
        let action = scaler.assess(&mut pool, &unit(), 12, BOOT, 1.0, t(10));
        // 12 units over 8 free: 2 more nodes at 0.7 target; both come from
        // the draining set, no boot needed — and the caller is *told* so,
        // rather than getting a `Hold` that hides the reappeared capacity.
        assert_eq!(pool.draining_count(), 0);
        assert_eq!(action, ScalingAction::Reclaim { nodes: 2 });
        assert_eq!(pool.booting_count(), 0, "reclaim needs no boot");
        assert!(pool.placeable(&unit()) >= 12);
    }

    #[test]
    fn partial_reclaim_is_reported_alongside_the_boot() {
        let mut pool = pool();
        pool.scale_up(1, t(0));
        pool.advance_to(t(0));
        pool.drain(1);
        assert_eq!(pool.draining_count(), 1);
        let mut scaler = Autoscaler::new(AutoscalerConfig::default()).with_min_nodes(2);
        // 30 units over 8 free: the one draining node is reclaimed *and*
        // fresh nodes boot; both facts surface in the action.
        let action = scaler.assess(&mut pool, &unit(), 30, BOOT, 1.0, t(10));
        let ScalingAction::ScaleUp {
            nodes, reclaimed, ..
        } = action
        else {
            panic!("expected scale-up, got {action:?}");
        };
        assert_eq!(reclaimed, 1);
        assert!(nodes >= 1);
        assert_eq!(pool.draining_count(), 0);
    }

    #[test]
    fn fragmentation_breaker_fires_while_boots_cannot_cover_demand() {
        // Two ready 4-unit nodes with 3 units placed each (1 free unit
        // apiece) and one node already booting. A fragmented 5-unit
        // request fits the prospective aggregate (2 free + 4 booting = 6)
        // but the in-flight boot alone (4 units) cannot cover it — the
        // breaker must fire *now*, not after the 45 s boot latency.
        let mut pool = pool();
        pool.place(&ResourceBundle::cores_gib(3, 3)).unwrap();
        pool.place(&ResourceBundle::cores_gib(3, 3)).unwrap();
        pool.scale_up(1, t(0) + BOOT);
        assert_eq!(pool.booting_count(), 1);
        let mut scaler = Autoscaler::new(AutoscalerConfig::default()).with_min_nodes(2);
        let action = scaler.assess(&mut pool, &unit(), 5, BOOT, 1.0, t(0));
        assert_eq!(
            action,
            ScalingAction::ScaleUp {
                nodes: 1,
                reclaimed: 0,
                ready_at: t(0) + BOOT
            },
            "blocked fragmented demand beyond the in-flight boots must break out"
        );
        // Demand the booting node *can* absorb keeps holding: no thrash.
        assert_eq!(
            scaler.assess(&mut pool, &unit(), 3, BOOT, 1.0, t(1)),
            ScalingAction::Hold
        );
    }

    #[test]
    fn fragmentation_breaker_prefers_reclaiming_a_draining_node() {
        let mut pool = pool();
        pool.scale_up(1, t(0));
        pool.advance_to(t(0));
        pool.drain(1);
        // Fill both remaining ready nodes to 1 free unit each.
        pool.place(&ResourceBundle::cores_gib(3, 3)).unwrap();
        pool.place(&ResourceBundle::cores_gib(3, 3)).unwrap();
        let mut scaler = Autoscaler::new(AutoscalerConfig::default()).with_min_nodes(2);
        // 2 units, 2 free in aggregate, but fragmented 1+1: reclaim the
        // draining node instead of booting a fresh one.
        let action = scaler.assess(&mut pool, &unit(), 2, BOOT, 1.0, t(10));
        assert_eq!(action, ScalingAction::Reclaim { nodes: 1 });
        assert_eq!(pool.draining_count(), 0);
        assert_eq!(pool.booting_count(), 0);
    }

    #[test]
    fn cost_meter_accrues_node_hours() {
        let mut meter = CostMeter::new(SimInstant::EPOCH);
        meter.accrue(4, 2.0, t(1_800)); // 4 nodes × 0.5 h × 2.0/h
        assert!((meter.accrued() - 4.0).abs() < 1e-9);
        assert!((meter.node_seconds() - 4.0 * 1_800.0).abs() < 1e-9);
        // Time never rolls back.
        meter.accrue(100, 2.0, t(900));
        assert!((meter.accrued() - 4.0).abs() < 1e-9);
        meter.accrue(1, 2.0, t(3_600)); // +1 node × 0.5 h × 2.0/h
        assert!((meter.accrued() - 5.0).abs() < 1e-9);
        assert_eq!(meter.billed_to(), t(3_600));
    }

    #[test]
    fn finalize_bills_the_final_partial_interval() {
        let mut meter = CostMeter::new(SimInstant::EPOCH);
        meter.accrue(2, 1.0, t(3_600));
        // A run ending 17 s into the next hour still bills that tail.
        let total = meter.finalize(2, 1.0, t(3_617));
        assert!((total - (2.0 + 2.0 * 17.0 / 3_600.0)).abs() < 1e-9);
        assert!((meter.node_seconds() - (2.0 * 3_617.0)).abs() < 1e-9);
        // Spend equals node-seconds × rate within float rounding.
        assert!((meter.accrued() - meter.node_seconds() * 1.0 / 3_600.0).abs() < 1e-9);
        // A second finalize at the same instant is a no-op.
        assert!((meter.finalize(2, 1.0, t(3_617)) - total).abs() < 1e-12);
    }
}
