//! Worker nodes and the elastic node pool.
//!
//! The pool is *time-aware*: scaling up does not hand out capacity at the
//! call instant. A freshly requested node enters [`NodeState::Booting`] and
//! only becomes visible to placement once the virtual clock — advanced by
//! the owner through [`NodePool::advance_to`] — passes its ready instant.
//! Scaling in is *drain-then-retire*: a draining node stops accepting new
//! bundles immediately but is only removed once its last allocation is
//! released. Both halves are what lets the platform interleave node
//! lifecycle events with task completions on one timeline.

use serde::{Deserialize, Serialize};
use simdc_types::{NodeId, ResourceBundle, Result, SimInstant, SimdcError};

/// Lifecycle state of a worker node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Requested from the elastic substrate; capacity is invisible to
    /// placement until the virtual clock reaches `ready_at`.
    Booting {
        /// Instant at which the node finishes booting.
        ready_at: SimInstant,
    },
    /// Up and accepting placements.
    Ready,
    /// Marked for retirement: accepts no new placements and is removed by
    /// [`NodePool::advance_to`] once its allocation drains to zero.
    Draining,
}

/// One worker node: total capacity, the amount currently allocated, and
/// its lifecycle state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerNode {
    id: NodeId,
    capacity: ResourceBundle,
    allocated: ResourceBundle,
    state: NodeState,
}

impl WorkerNode {
    /// Creates an empty, ready node with the given capacity.
    #[must_use]
    pub fn new(id: NodeId, capacity: ResourceBundle) -> Self {
        WorkerNode {
            id,
            capacity,
            allocated: ResourceBundle::ZERO,
            state: NodeState::Ready,
        }
    }

    /// Creates a node that is still booting and becomes ready at
    /// `ready_at`.
    #[must_use]
    pub fn booting(id: NodeId, capacity: ResourceBundle, ready_at: SimInstant) -> Self {
        WorkerNode {
            id,
            capacity,
            allocated: ResourceBundle::ZERO,
            state: NodeState::Booting { ready_at },
        }
    }

    /// Node identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Total capacity.
    #[must_use]
    pub fn capacity(&self) -> ResourceBundle {
        self.capacity
    }

    /// Currently allocated resources.
    #[must_use]
    pub fn allocated(&self) -> ResourceBundle {
        self.allocated
    }

    /// Lifecycle state.
    #[must_use]
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// Whether the node is up and accepting placements.
    #[must_use]
    pub fn is_ready(&self) -> bool {
        self.state == NodeState::Ready
    }

    /// Whether the node is still booting.
    #[must_use]
    pub fn is_booting(&self) -> bool {
        matches!(self.state, NodeState::Booting { .. })
    }

    /// Whether the node is draining toward retirement.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.state == NodeState::Draining
    }

    /// Remaining free resources.
    #[must_use]
    pub fn free(&self) -> ResourceBundle {
        self.capacity.saturating_sub(&self.allocated)
    }

    /// Whether `bundle` currently fits on this node (capacity only; the
    /// pool additionally requires [`WorkerNode::is_ready`] for placement).
    #[must_use]
    pub fn fits(&self, bundle: &ResourceBundle) -> bool {
        self.free().contains(bundle)
    }

    /// Reserves `bundle` on this node.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::ResourceExhausted`] if it does not fit or the
    /// node is not ready (booting or draining nodes accept no placements).
    pub fn reserve(&mut self, bundle: &ResourceBundle) -> Result<()> {
        if !self.is_ready() || !self.fits(bundle) {
            return Err(SimdcError::ResourceExhausted {
                requested: bundle.to_string(),
                available: self.free().to_string(),
            });
        }
        self.allocated += *bundle;
        Ok(())
    }

    /// Releases a previously reserved bundle.
    ///
    /// Release must pair with a reservation: debug builds assert the
    /// bundle fits inside the current allocation, so a double release (or
    /// releasing on the wrong node) cannot silently zero-clamp and mask an
    /// accounting bug — mirroring the platform's lease-pairing invariant.
    /// Release builds keep the saturating subtraction as a safety net.
    pub fn release(&mut self, bundle: &ResourceBundle) {
        debug_assert!(
            self.allocated.contains(bundle),
            "release of {bundle} exceeds allocation {} on node {} (double release?)",
            self.allocated,
            self.id
        );
        self.allocated = self.allocated.saturating_sub(bundle);
    }

    /// Whether nothing is allocated.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.allocated.is_zero()
    }
}

/// How one [`NodePool::advance_to`] call changed the pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolTransition {
    /// Booting nodes that became ready.
    pub became_ready: usize,
    /// Draining nodes that were retired (removed).
    pub retired: usize,
}

/// An elastically scalable pool of identical worker nodes (the k8s layer).
///
/// Scale-up charges boot latency: [`NodePool::scale_up`] and
/// [`NodePool::scale_up_for`] add *booting* nodes whose capacity placement
/// cannot see until [`NodePool::advance_to`] passes their ready instant.
/// Scale-in is drain-then-retire via [`NodePool::drain`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodePool {
    template: ResourceBundle,
    max_nodes: usize,
    nodes: Vec<WorkerNode>,
    next_id: u32,
    /// Lifetime counters for elasticity reporting.
    booted_total: u64,
    retired_total: u64,
    peak_nodes: usize,
}

impl NodePool {
    /// Creates a pool of `initial` *ready* nodes of size `template`,
    /// allowed to grow to `max_nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `template` is the zero bundle, `initial` is zero, or
    /// `initial > max_nodes`.
    #[must_use]
    pub fn new(template: ResourceBundle, initial: usize, max_nodes: usize) -> Self {
        assert!(!template.is_zero(), "node template must be non-empty");
        assert!(initial > 0, "pool needs at least one node");
        assert!(initial <= max_nodes, "initial nodes exceed max_nodes");
        let mut pool = NodePool {
            template,
            max_nodes,
            nodes: Vec::new(),
            next_id: 0,
            booted_total: 0,
            retired_total: 0,
            peak_nodes: 0,
        };
        for _ in 0..initial {
            pool.add_node(NodeState::Ready);
        }
        pool
    }

    fn add_node(&mut self, state: NodeState) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        let mut node = WorkerNode::new(id, self.template);
        node.state = state;
        self.nodes.push(node);
        self.booted_total += 1;
        self.peak_nodes = self.peak_nodes.max(self.nodes.len());
        id
    }

    /// The per-node capacity template.
    #[must_use]
    pub fn template(&self) -> ResourceBundle {
        self.template
    }

    /// The elastic ceiling.
    #[must_use]
    pub fn max_nodes(&self) -> usize {
        self.max_nodes
    }

    /// The nodes currently in the pool (every lifecycle state).
    #[must_use]
    pub fn nodes(&self) -> &[WorkerNode] {
        &self.nodes
    }

    /// Mutable node access by id.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut WorkerNode> {
        self.nodes.iter_mut().find(|n| n.id() == id)
    }

    /// Number of nodes in any state (physical footprint — what the cost
    /// meter bills).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pool holds no nodes at all (possible after a full
    /// [`NodePool::scale_down`] to zero).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of ready nodes.
    #[must_use]
    pub fn ready_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_ready()).count()
    }

    /// Number of booting nodes.
    #[must_use]
    pub fn booting_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_booting()).count()
    }

    /// Number of draining nodes.
    #[must_use]
    pub fn draining_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_draining()).count()
    }

    /// Nodes ever booted (including the initial set).
    #[must_use]
    pub fn booted_total(&self) -> u64 {
        self.booted_total
    }

    /// Nodes ever retired.
    #[must_use]
    pub fn retired_total(&self) -> u64 {
        self.retired_total
    }

    /// Largest physical footprint the pool ever reached.
    #[must_use]
    pub fn peak_nodes(&self) -> usize {
        self.peak_nodes
    }

    /// Total capacity across *ready* nodes — the capacity placement (and
    /// the Resource Manager's total) can actually count on. Booting nodes
    /// are excluded until they come up; draining nodes accept no new work.
    #[must_use]
    pub fn total_capacity(&self) -> ResourceBundle {
        self.nodes
            .iter()
            .filter(|n| n.is_ready())
            .map(WorkerNode::capacity)
            .sum()
    }

    /// Total free resources across ready nodes.
    #[must_use]
    pub fn total_free(&self) -> ResourceBundle {
        self.nodes
            .iter()
            .filter(|n| n.is_ready())
            .map(WorkerNode::free)
            .sum()
    }

    /// How many `unit` bundles the ready nodes could hold at full capacity
    /// (ignoring current allocations), respecting per-node boundaries.
    #[must_use]
    pub fn unit_capacity(&self, unit: &ResourceBundle) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.is_ready())
            .map(|n| n.capacity().max_bundles(unit))
            .sum()
    }

    /// Fraction of ready-node CPU capacity currently allocated, in
    /// `[0, 1]`. Allocations still held on *draining* nodes count toward
    /// the numerator (they are real usage) but draining capacity is not in
    /// the denominator — so a pool whose busy nodes are all draining reads
    /// as over-utilized, which is exactly the pressure signal the
    /// autoscaler should see.
    #[must_use]
    pub fn cpu_utilization(&self) -> f64 {
        let cap = self.total_capacity().cpu_millicores;
        if cap == 0 {
            return if self.nodes.iter().any(|n| !n.is_idle()) {
                1.0
            } else {
                0.0
            };
        }
        let used: u64 = self
            .nodes
            .iter()
            .filter(|n| n.is_ready() || n.is_draining())
            .map(|n| n.allocated().cpu_millicores)
            .sum();
        (used as f64 / cap as f64).min(1.0)
    }

    /// Adds up to `count` booting nodes that become ready at `ready_at`.
    /// Returns how many were actually added (capped at `max_nodes`).
    ///
    /// The new capacity is *not* usable at the call instant: placement
    /// ignores booting nodes until [`NodePool::advance_to`] reaches
    /// `ready_at` — scale-up charges its boot latency.
    pub fn scale_up(&mut self, count: usize, ready_at: SimInstant) -> usize {
        let mut added = 0;
        while added < count && self.nodes.len() < self.max_nodes {
            self.add_node(NodeState::Booting { ready_at });
            added += 1;
        }
        added
    }

    /// Scales up by adding booting nodes until the pool — once everything
    /// currently booting is up — could place `bundles` of size `unit` at
    /// full capacity, or `max_nodes` is reached. New nodes become ready at
    /// `ready_at`; none of the added capacity is placeable before then.
    ///
    /// Returns the number of nodes added.
    pub fn scale_up_for(
        &mut self,
        unit: &ResourceBundle,
        bundles: u64,
        ready_at: SimInstant,
    ) -> usize {
        if unit.is_zero() {
            return 0;
        }
        let per_node = self.template.max_bundles(unit);
        if per_node == 0 {
            return 0;
        }
        let mut added = 0;
        while self.prospective_units(unit) < bundles && self.nodes.len() < self.max_nodes {
            self.add_node(NodeState::Booting { ready_at });
            added += 1;
        }
        added
    }

    /// Unit bundles the pool could hold once every booting node is up:
    /// current free capacity on ready nodes plus the full capacity of
    /// booting nodes.
    #[must_use]
    pub fn prospective_units(&self, unit: &ResourceBundle) -> u64 {
        self.nodes
            .iter()
            .map(|n| match n.state() {
                NodeState::Ready => n.free().max_bundles(unit),
                NodeState::Booting { .. } => n.capacity().max_bundles(unit),
                NodeState::Draining => 0,
            })
            .sum()
    }

    /// Marks up to `count` nodes as draining, preferring idle nodes and
    /// newer nodes first. Idle draining nodes are removed by the next
    /// [`NodePool::advance_to`]; busy ones retire once their allocations
    /// release. Booting nodes are never drained (cancel the boot instead
    /// is not supported — they come up and drain later if still surplus).
    /// Returns how many nodes were marked.
    pub fn drain(&mut self, count: usize) -> usize {
        let mut marked = 0;
        // Idle ready nodes first (retire immediately at next advance),
        // newest first so long-lived nodes keep their ids stable.
        for pass_busy in [false, true] {
            if marked >= count {
                break;
            }
            for node in self.nodes.iter_mut().rev() {
                if marked >= count {
                    break;
                }
                if node.is_ready() && (pass_busy || node.is_idle()) {
                    node.state = NodeState::Draining;
                    marked += 1;
                }
            }
        }
        marked
    }

    /// Returns up to `count` draining nodes to ready service (demand came
    /// back before they retired). Returns how many were reclaimed.
    pub fn cancel_drain(&mut self, count: usize) -> usize {
        let mut reclaimed = 0;
        for node in &mut self.nodes {
            if reclaimed >= count {
                break;
            }
            if node.is_draining() {
                node.state = NodeState::Ready;
                reclaimed += 1;
            }
        }
        reclaimed
    }

    /// Advances the pool's lifecycle clock to `now`: booting nodes whose
    /// ready instant has passed become ready, and idle draining nodes are
    /// retired (removed). Returns what changed.
    pub fn advance_to(&mut self, now: SimInstant) -> PoolTransition {
        let mut transition = PoolTransition::default();
        for node in &mut self.nodes {
            if let NodeState::Booting { ready_at } = node.state {
                if ready_at <= now {
                    node.state = NodeState::Ready;
                    transition.became_ready += 1;
                }
            }
        }
        let before = self.nodes.len();
        self.nodes.retain(|n| !(n.is_draining() && n.is_idle()));
        transition.retired = before - self.nodes.len();
        self.retired_total += transition.retired as u64;
        transition
    }

    /// The earliest instant at which a booting node becomes ready, if any
    /// node is booting — where the platform schedules its node-ready
    /// event.
    #[must_use]
    pub fn next_ready_at(&self) -> Option<SimInstant> {
        self.nodes
            .iter()
            .filter_map(|n| match n.state() {
                NodeState::Booting { ready_at } => Some(ready_at),
                _ => None,
            })
            .min()
    }

    /// Removes idle nodes beyond `keep`, newest first — an *immediate*
    /// administrative scale-down (busy nodes still survive; only idle
    /// nodes are ever removed). Returns how many were removed.
    ///
    /// `keep = 0` is honored: a caller scaling to zero gets an empty pool,
    /// and [`NodePool::scale_up_for`] can regrow it later. The autoscaler
    /// uses the gentler [`NodePool::drain`] path instead.
    pub fn scale_down(&mut self, keep: usize) -> usize {
        let mut removed = 0;
        while self.nodes.len() > keep {
            let Some(pos) = self.nodes.iter().rposition(WorkerNode::is_idle) else {
                break;
            };
            self.nodes.remove(pos);
            self.retired_total += 1;
            removed += 1;
        }
        removed
    }

    /// How many bundles of size `unit` fit on the ready nodes right now,
    /// respecting per-node boundaries. Booting and draining capacity is
    /// invisible.
    #[must_use]
    pub fn placeable(&self, unit: &ResourceBundle) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.is_ready())
            .map(|n| n.free().max_bundles(unit))
            .sum()
    }

    /// Whether every `(bundle, count)` request could be placed together on
    /// the ready nodes right now — a side-effect-free trial of the same
    /// first-fit the real placement uses.
    #[must_use]
    pub fn can_place_all(&self, requests: &[(ResourceBundle, u64)]) -> bool {
        let mut free: Vec<ResourceBundle> = self
            .nodes
            .iter()
            .filter(|n| n.is_ready())
            .map(WorkerNode::free)
            .collect();
        Self::trial_fit(&mut free, requests)
    }

    /// Whether `(bundle, count)` requests could ever be placed on a fully
    /// scaled-out, empty pool of `ceiling` nodes — the admission-time
    /// feasibility ceiling (fragmentation included).
    #[must_use]
    pub fn could_ever_place(&self, requests: &[(ResourceBundle, u64)], ceiling: usize) -> bool {
        let mut free = vec![self.template; ceiling];
        Self::trial_fit(&mut free, requests)
    }

    fn trial_fit(free: &mut [ResourceBundle], requests: &[(ResourceBundle, u64)]) -> bool {
        for (bundle, count) in requests {
            for _ in 0..*count {
                let Some(slot) = free.iter_mut().find(|f| f.contains(bundle)) else {
                    return false;
                };
                *slot = slot.saturating_sub(bundle);
            }
        }
        true
    }

    /// First-fit placement of one bundle onto a ready node; returns the
    /// node it landed on.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::ResourceExhausted`] when no ready node can
    /// hold the bundle.
    pub fn place(&mut self, bundle: &ResourceBundle) -> Result<NodeId> {
        for node in &mut self.nodes {
            if node.is_ready() && node.fits(bundle) {
                node.reserve(bundle)?;
                return Ok(node.id());
            }
        }
        Err(SimdcError::ResourceExhausted {
            requested: bundle.to_string(),
            available: self.total_free().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdc_types::SimDuration;

    fn unit() -> ResourceBundle {
        ResourceBundle::cores_gib(1, 1)
    }

    fn pool() -> NodePool {
        // 4-core/8-GiB nodes, 2 initial, max 5.
        NodePool::new(ResourceBundle::cores_gib(4, 8), 2, 5)
    }

    fn t(secs: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs(secs)
    }

    #[test]
    fn reserve_and_release_round_trip() {
        let mut node = WorkerNode::new(NodeId(0), ResourceBundle::cores_gib(2, 2));
        assert!(node.is_idle());
        node.reserve(&unit()).unwrap();
        assert!(!node.is_idle());
        assert_eq!(node.free(), ResourceBundle::cores_gib(1, 1));
        node.release(&unit());
        assert!(node.is_idle());
    }

    #[test]
    fn reserve_rejects_overcommit() {
        let mut node = WorkerNode::new(NodeId(0), unit());
        node.reserve(&unit()).unwrap();
        assert!(node.reserve(&unit()).is_err());
    }

    #[test]
    fn booting_node_rejects_placements() {
        let mut node = WorkerNode::booting(NodeId(0), unit(), t(30));
        assert!(node.reserve(&unit()).is_err());
        assert!(node.is_booting());
    }

    /// Debug builds trap the unpaired release instead of letting the
    /// saturating subtraction absorb it.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double release")]
    fn unpaired_release_panics_in_debug() {
        let mut node = WorkerNode::new(NodeId(0), unit());
        node.release(&unit());
    }

    /// Release builds keep the zero-clamp as a safety net.
    #[test]
    #[cfg(not(debug_assertions))]
    fn unpaired_release_saturates_in_release() {
        let mut node = WorkerNode::new(NodeId(0), unit());
        node.release(&unit());
        assert!(node.is_idle());
        assert_eq!(node.free(), unit());
    }

    #[test]
    fn placeable_respects_node_boundaries() {
        let pool = pool();
        // Each 4c/8g node fits 4 one-core-one-GiB units → 8 total.
        assert_eq!(pool.placeable(&unit()), 8);
        // A 3-core/6-GiB bundle fits once per node.
        assert_eq!(pool.placeable(&ResourceBundle::cores_gib(3, 6)), 2);
        // A 5-core bundle fits nowhere even though total CPU is 8.
        assert_eq!(pool.placeable(&ResourceBundle::cores_gib(5, 1)), 0);
    }

    #[test]
    fn place_first_fit() {
        let mut pool = pool();
        let n1 = pool.place(&ResourceBundle::cores_gib(3, 3)).unwrap();
        let n2 = pool.place(&ResourceBundle::cores_gib(3, 3)).unwrap();
        assert_eq!(n1, NodeId(0));
        assert_eq!(n2, NodeId(1)); // does not fit next to the first
        assert!(pool.place(&ResourceBundle::cores_gib(3, 3)).is_err());
    }

    /// The boot-latency regression: scale-up must NOT make capacity usable
    /// at the call instant — placement sees it only after the virtual
    /// clock passes the ready instant.
    #[test]
    fn scale_up_charges_boot_latency_before_capacity_is_placeable() {
        let mut pool = pool();
        assert_eq!(pool.placeable(&unit()), 8);
        let added = pool.scale_up_for(&unit(), 20, t(30)); // needs 5 nodes
        assert_eq!(added, 3);
        assert_eq!(pool.len(), 5);
        // Capacity is *not* visible at the call instant.
        assert_eq!(pool.placeable(&unit()), 8, "booting capacity leaked");
        assert_eq!(pool.booting_count(), 3);
        assert_eq!(pool.next_ready_at(), Some(t(30)));
        // Not visible one tick before boot completes either.
        pool.advance_to(t(29));
        assert_eq!(pool.placeable(&unit()), 8);
        // Visible exactly at the ready instant.
        let transition = pool.advance_to(t(30));
        assert_eq!(transition.became_ready, 3);
        assert_eq!(pool.placeable(&unit()), 20);
        assert_eq!(pool.next_ready_at(), None);
        // Capped at max_nodes.
        assert_eq!(pool.scale_up_for(&unit(), 100, t(60)), 0);
    }

    #[test]
    fn prospective_units_count_booting_capacity() {
        let mut pool = pool();
        pool.scale_up(2, t(30));
        assert_eq!(pool.prospective_units(&unit()), 16);
        assert_eq!(pool.placeable(&unit()), 8);
        // scale_up_for sees the in-flight boots and does not double-boot.
        assert_eq!(pool.scale_up_for(&unit(), 16, t(40)), 0);
    }

    #[test]
    fn drain_then_retire_spares_busy_nodes_until_release() {
        let mut pool = pool();
        pool.scale_up(1, t(0));
        pool.advance_to(t(0));
        assert_eq!(pool.ready_count(), 3);
        let busy_node = pool.place(&unit()).unwrap();
        // Drain everything: the busy node drains but survives.
        assert_eq!(pool.drain(3), 3);
        let transition = pool.advance_to(t(10));
        assert_eq!(transition.retired, 2, "only idle nodes retire");
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.draining_count(), 1);
        // A draining node accepts no new placements.
        assert!(pool.place(&unit()).is_err());
        assert_eq!(pool.placeable(&unit()), 0);
        // Releasing its allocation lets the next advance retire it.
        pool.node_mut(busy_node).unwrap().release(&unit());
        let transition = pool.advance_to(t(20));
        assert_eq!(transition.retired, 1);
        assert!(pool.is_empty());
        assert_eq!(pool.retired_total(), 3);
    }

    #[test]
    fn cancel_drain_reclaims_nodes() {
        let mut pool = pool();
        pool.drain(2);
        assert_eq!(pool.ready_count(), 0);
        assert_eq!(pool.cancel_drain(1), 1);
        assert_eq!(pool.ready_count(), 1);
        assert_eq!(pool.placeable(&unit()), 4);
    }

    #[test]
    fn scale_down_removes_idle_nodes_only() {
        let mut pool = pool();
        pool.scale_up_for(&unit(), 12, t(0));
        pool.advance_to(t(0));
        assert_eq!(pool.len(), 3);
        pool.place(&unit()).unwrap(); // occupies node 0
        let removed = pool.scale_down(1);
        assert_eq!(removed, 2);
        assert_eq!(pool.len(), 1);
        // The busy node survives even though keep=1 was already satisfied.
        assert!(!pool.nodes()[0].is_idle());
    }

    #[test]
    fn scale_down_to_zero_empties_an_idle_pool() {
        let mut pool = pool();
        pool.scale_up_for(&unit(), 12, t(0));
        pool.advance_to(t(0));
        assert_eq!(pool.len(), 3);
        // keep = 0 is honored, not clamped to one retained node.
        let removed = pool.scale_down(0);
        assert_eq!(removed, 3);
        assert!(pool.is_empty());
        assert_eq!(pool.placeable(&unit()), 0);
        assert!(pool.place(&unit()).is_err());
        // The pool regrows on demand (after the boot window).
        assert_eq!(pool.scale_up_for(&unit(), 4, t(30)), 1);
        pool.advance_to(t(30));
        assert_eq!(pool.len(), 1);
        pool.place(&unit()).unwrap();
    }

    #[test]
    fn scale_down_to_zero_spares_busy_nodes() {
        let mut pool = pool();
        pool.scale_up_for(&unit(), 12, t(0));
        pool.advance_to(t(0));
        pool.place(&unit()).unwrap(); // occupies node 0
        let removed = pool.scale_down(0);
        assert_eq!(removed, 2, "only the idle nodes go");
        assert_eq!(pool.len(), 1);
        assert!(!pool.nodes()[0].is_idle());
    }

    #[test]
    fn utilization_tracks_cpu() {
        let mut pool = pool();
        assert_eq!(pool.cpu_utilization(), 0.0);
        pool.place(&ResourceBundle::cores_gib(4, 4)).unwrap();
        assert!((pool.cpu_utilization() - 0.5).abs() < 1e-12);
        // Booting capacity does not dilute utilization.
        pool.scale_up(3, t(30));
        assert!((pool.cpu_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trial_placement_matches_real_placement() {
        let pool = pool();
        let three = ResourceBundle::cores_gib(3, 3);
        assert!(pool.can_place_all(&[(three, 2)]));
        assert!(!pool.can_place_all(&[(three, 3)]));
        // Mixed requests share nodes the way first-fit would.
        assert!(pool.can_place_all(&[(three, 1), (unit(), 5)]));
        assert!(!pool.can_place_all(&[(three, 2), (ResourceBundle::cores_gib(2, 2), 1)]));
        // Full-scale feasibility uses empty nodes at the ceiling.
        assert!(pool.could_ever_place(&[(three, 5)], 5));
        assert!(!pool.could_ever_place(&[(three, 6)], 5));
        assert!(!pool.could_ever_place(&[(ResourceBundle::cores_gib(5, 1), 1)], 5));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_initial_nodes_rejected() {
        let _ = NodePool::new(unit(), 0, 3);
    }
}
