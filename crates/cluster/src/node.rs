//! Worker nodes and the elastic node pool.

use serde::{Deserialize, Serialize};
use simdc_types::{NodeId, ResourceBundle, Result, SimdcError};

/// One worker node: total capacity and the amount currently allocated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerNode {
    id: NodeId,
    capacity: ResourceBundle,
    allocated: ResourceBundle,
}

impl WorkerNode {
    /// Creates an empty node with the given capacity.
    #[must_use]
    pub fn new(id: NodeId, capacity: ResourceBundle) -> Self {
        WorkerNode {
            id,
            capacity,
            allocated: ResourceBundle::ZERO,
        }
    }

    /// Node identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Total capacity.
    #[must_use]
    pub fn capacity(&self) -> ResourceBundle {
        self.capacity
    }

    /// Currently allocated resources.
    #[must_use]
    pub fn allocated(&self) -> ResourceBundle {
        self.allocated
    }

    /// Remaining free resources.
    #[must_use]
    pub fn free(&self) -> ResourceBundle {
        self.capacity.saturating_sub(&self.allocated)
    }

    /// Whether `bundle` currently fits on this node.
    #[must_use]
    pub fn fits(&self, bundle: &ResourceBundle) -> bool {
        self.free().contains(bundle)
    }

    /// Reserves `bundle` on this node.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::ResourceExhausted`] if it does not fit.
    pub fn reserve(&mut self, bundle: &ResourceBundle) -> Result<()> {
        if !self.fits(bundle) {
            return Err(SimdcError::ResourceExhausted {
                requested: bundle.to_string(),
                available: self.free().to_string(),
            });
        }
        self.allocated += *bundle;
        Ok(())
    }

    /// Releases a previously reserved bundle.
    ///
    /// Release must pair with a reservation: debug builds assert the
    /// bundle fits inside the current allocation, so a double release (or
    /// releasing on the wrong node) cannot silently zero-clamp and mask an
    /// accounting bug — mirroring the platform's lease-pairing invariant.
    /// Release builds keep the saturating subtraction as a safety net.
    pub fn release(&mut self, bundle: &ResourceBundle) {
        debug_assert!(
            self.allocated.contains(bundle),
            "release of {bundle} exceeds allocation {} on node {} (double release?)",
            self.allocated,
            self.id
        );
        self.allocated = self.allocated.saturating_sub(bundle);
    }

    /// Whether nothing is allocated.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.allocated.is_zero()
    }
}

/// An elastically scalable pool of identical worker nodes (the k8s layer).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodePool {
    template: ResourceBundle,
    max_nodes: usize,
    nodes: Vec<WorkerNode>,
    next_id: u32,
}

impl NodePool {
    /// Creates a pool of `initial` nodes of size `template`, allowed to
    /// grow to `max_nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `template` is the zero bundle, `initial` is zero, or
    /// `initial > max_nodes`.
    #[must_use]
    pub fn new(template: ResourceBundle, initial: usize, max_nodes: usize) -> Self {
        assert!(!template.is_zero(), "node template must be non-empty");
        assert!(initial > 0, "pool needs at least one node");
        assert!(initial <= max_nodes, "initial nodes exceed max_nodes");
        let mut pool = NodePool {
            template,
            max_nodes,
            nodes: Vec::new(),
            next_id: 0,
        };
        for _ in 0..initial {
            pool.add_node();
        }
        pool
    }

    fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.nodes.push(WorkerNode::new(id, self.template));
        id
    }

    /// The nodes currently in the pool.
    #[must_use]
    pub fn nodes(&self) -> &[WorkerNode] {
        &self.nodes
    }

    /// Mutable node access by id.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut WorkerNode> {
        self.nodes.iter_mut().find(|n| n.id() == id)
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pool is empty (possible after a full
    /// [`NodePool::scale_down`] to zero).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total capacity across nodes.
    #[must_use]
    pub fn total_capacity(&self) -> ResourceBundle {
        self.nodes.iter().map(WorkerNode::capacity).sum()
    }

    /// Total free resources across nodes.
    #[must_use]
    pub fn total_free(&self) -> ResourceBundle {
        self.nodes.iter().map(WorkerNode::free).sum()
    }

    /// Fraction of CPU capacity currently allocated, in `[0, 1]`.
    #[must_use]
    pub fn cpu_utilization(&self) -> f64 {
        let cap = self.total_capacity().cpu_millicores;
        if cap == 0 {
            return 0.0;
        }
        let used = cap - self.total_free().cpu_millicores;
        used as f64 / cap as f64
    }

    /// Scales up by adding nodes until `bundles` of size `unit` *could* be
    /// placed (capacity heuristic), or `max_nodes` is reached.
    ///
    /// Returns the number of nodes added.
    pub fn scale_up_for(&mut self, unit: &ResourceBundle, bundles: u64) -> usize {
        if unit.is_zero() {
            return 0;
        }
        let mut added = 0;
        while self.placeable(unit) < bundles && self.nodes.len() < self.max_nodes {
            self.add_node();
            added += 1;
        }
        added
    }

    /// Removes idle nodes beyond `keep`, newest first. Returns how many
    /// were removed.
    ///
    /// `keep = 0` is honored: a caller scaling to zero gets an empty pool
    /// (busy nodes still survive — only idle nodes are ever removed), and
    /// [`NodePool::scale_up_for`] can regrow it later.
    pub fn scale_down(&mut self, keep: usize) -> usize {
        let mut removed = 0;
        while self.nodes.len() > keep {
            let Some(pos) = self.nodes.iter().rposition(WorkerNode::is_idle) else {
                break;
            };
            self.nodes.remove(pos);
            removed += 1;
        }
        removed
    }

    /// How many bundles of size `unit` fit in the pool right now,
    /// respecting per-node boundaries.
    #[must_use]
    pub fn placeable(&self, unit: &ResourceBundle) -> u64 {
        self.nodes.iter().map(|n| n.free().max_bundles(unit)).sum()
    }

    /// First-fit placement of one bundle; returns the node it landed on.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::ResourceExhausted`] when no node can hold the
    /// bundle.
    pub fn place(&mut self, bundle: &ResourceBundle) -> Result<NodeId> {
        for node in &mut self.nodes {
            if node.fits(bundle) {
                node.reserve(bundle)?;
                return Ok(node.id());
            }
        }
        Err(SimdcError::ResourceExhausted {
            requested: bundle.to_string(),
            available: self.total_free().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> ResourceBundle {
        ResourceBundle::cores_gib(1, 1)
    }

    fn pool() -> NodePool {
        // 4-core/8-GiB nodes, 2 initial, max 5.
        NodePool::new(ResourceBundle::cores_gib(4, 8), 2, 5)
    }

    #[test]
    fn reserve_and_release_round_trip() {
        let mut node = WorkerNode::new(NodeId(0), ResourceBundle::cores_gib(2, 2));
        assert!(node.is_idle());
        node.reserve(&unit()).unwrap();
        assert!(!node.is_idle());
        assert_eq!(node.free(), ResourceBundle::cores_gib(1, 1));
        node.release(&unit());
        assert!(node.is_idle());
    }

    #[test]
    fn reserve_rejects_overcommit() {
        let mut node = WorkerNode::new(NodeId(0), unit());
        node.reserve(&unit()).unwrap();
        assert!(node.reserve(&unit()).is_err());
    }

    /// Debug builds trap the unpaired release instead of letting the
    /// saturating subtraction absorb it.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double release")]
    fn unpaired_release_panics_in_debug() {
        let mut node = WorkerNode::new(NodeId(0), unit());
        node.release(&unit());
    }

    /// Release builds keep the zero-clamp as a safety net.
    #[test]
    #[cfg(not(debug_assertions))]
    fn unpaired_release_saturates_in_release() {
        let mut node = WorkerNode::new(NodeId(0), unit());
        node.release(&unit());
        assert!(node.is_idle());
        assert_eq!(node.free(), unit());
    }

    #[test]
    fn placeable_respects_node_boundaries() {
        let pool = pool();
        // Each 4c/8g node fits 4 one-core-one-GiB units → 8 total.
        assert_eq!(pool.placeable(&unit()), 8);
        // A 3-core/6-GiB bundle fits once per node.
        assert_eq!(pool.placeable(&ResourceBundle::cores_gib(3, 6)), 2);
        // A 5-core bundle fits nowhere even though total CPU is 8.
        assert_eq!(pool.placeable(&ResourceBundle::cores_gib(5, 1)), 0);
    }

    #[test]
    fn place_first_fit() {
        let mut pool = pool();
        let n1 = pool.place(&ResourceBundle::cores_gib(3, 3)).unwrap();
        let n2 = pool.place(&ResourceBundle::cores_gib(3, 3)).unwrap();
        assert_eq!(n1, NodeId(0));
        assert_eq!(n2, NodeId(1)); // does not fit next to the first
        assert!(pool.place(&ResourceBundle::cores_gib(3, 3)).is_err());
    }

    #[test]
    fn scale_up_adds_until_placeable() {
        let mut pool = pool();
        let added = pool.scale_up_for(&unit(), 20); // needs 5 nodes (4 units each)
        assert_eq!(added, 3);
        assert_eq!(pool.len(), 5);
        assert_eq!(pool.placeable(&unit()), 20);
        // Capped at max_nodes.
        assert_eq!(pool.scale_up_for(&unit(), 100), 0);
    }

    #[test]
    fn scale_down_removes_idle_nodes_only() {
        let mut pool = pool();
        pool.scale_up_for(&unit(), 12);
        assert_eq!(pool.len(), 3);
        pool.place(&unit()).unwrap(); // occupies node 0
        let removed = pool.scale_down(1);
        assert_eq!(removed, 2);
        assert_eq!(pool.len(), 1);
        // The busy node survives even though keep=1 was already satisfied.
        assert!(!pool.nodes()[0].is_idle());
    }

    #[test]
    fn scale_down_to_zero_empties_an_idle_pool() {
        let mut pool = pool();
        pool.scale_up_for(&unit(), 12);
        assert_eq!(pool.len(), 3);
        // keep = 0 is honored, not clamped to one retained node.
        let removed = pool.scale_down(0);
        assert_eq!(removed, 3);
        assert!(pool.is_empty());
        assert_eq!(pool.placeable(&unit()), 0);
        assert!(pool.place(&unit()).is_err());
        // The pool regrows on demand.
        assert_eq!(pool.scale_up_for(&unit(), 4), 1);
        assert_eq!(pool.len(), 1);
        pool.place(&unit()).unwrap();
    }

    #[test]
    fn scale_down_to_zero_spares_busy_nodes() {
        let mut pool = pool();
        pool.scale_up_for(&unit(), 12);
        pool.place(&unit()).unwrap(); // occupies node 0
        let removed = pool.scale_down(0);
        assert_eq!(removed, 2, "only the idle nodes go");
        assert_eq!(pool.len(), 1);
        assert!(!pool.nodes()[0].is_idle());
    }

    #[test]
    fn utilization_tracks_cpu() {
        let mut pool = pool();
        assert_eq!(pool.cpu_utilization(), 0.0);
        pool.place(&ResourceBundle::cores_gib(4, 4)).unwrap();
        assert!((pool.cpu_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_initial_nodes_rejected() {
        let _ = NodePool::new(unit(), 0, 3);
    }
}
