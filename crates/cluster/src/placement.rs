//! Placement groups: all-or-nothing reservations of actor bundles.

use serde::{Deserialize, Serialize};
use simdc_types::{NodeId, ResourceBundle, Result};

use crate::node::NodePool;

/// Identifier of a placement group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PlacementGroupId(pub u64);

impl std::fmt::Display for PlacementGroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pg-{}", self.0)
    }
}

/// A placed group: which node each bundle landed on.
///
/// Ray semantics: the group is created atomically — if any bundle cannot be
/// placed, none are, and the pool is left untouched.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementGroup {
    id: PlacementGroupId,
    bundle: ResourceBundle,
    placements: Vec<NodeId>,
}

impl PlacementGroup {
    /// Atomically places `count` copies of `bundle` onto the pool.
    ///
    /// # Errors
    ///
    /// Returns [`simdc_types::SimdcError::ResourceExhausted`] if the full
    /// group does not fit; in that case no resources are reserved.
    pub fn create(
        id: PlacementGroupId,
        pool: &mut NodePool,
        bundle: ResourceBundle,
        count: usize,
    ) -> Result<Self> {
        let mut placements = Vec::with_capacity(count);
        for i in 0..count {
            match pool.place(&bundle) {
                Ok(node) => placements.push(node),
                Err(err) => {
                    // Roll back everything placed so far.
                    for &node in placements.iter().take(i) {
                        if let Some(n) = pool.node_mut(node) {
                            n.release(&bundle);
                        }
                    }
                    return Err(err);
                }
            }
        }
        Ok(PlacementGroup {
            id,
            bundle,
            placements,
        })
    }

    /// Group id.
    #[must_use]
    pub fn id(&self) -> PlacementGroupId {
        self.id
    }

    /// The per-actor bundle size.
    #[must_use]
    pub fn bundle(&self) -> ResourceBundle {
        self.bundle
    }

    /// Node of each placed bundle, in actor order.
    #[must_use]
    pub fn placements(&self) -> &[NodeId] {
        &self.placements
    }

    /// Number of bundles (= actors).
    #[must_use]
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// Whether the group holds no bundles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Releases every bundle back to the pool.
    pub fn release(&self, pool: &mut NodePool) {
        for &node in &self.placements {
            if let Some(n) = pool.node_mut(node) {
                n.release(&self.bundle);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> NodePool {
        NodePool::new(ResourceBundle::cores_gib(4, 8), 2, 2)
    }

    #[test]
    fn create_and_release() {
        let mut pool = pool();
        let pg = PlacementGroup::create(
            PlacementGroupId(1),
            &mut pool,
            ResourceBundle::cores_gib(2, 2),
            3,
        )
        .unwrap();
        assert_eq!(pg.len(), 3);
        assert_eq!(pool.total_free(), ResourceBundle::new(2_000, 10 * 1_024, 0));
        pg.release(&mut pool);
        assert_eq!(pool.total_free(), pool.total_capacity());
    }

    #[test]
    fn create_is_atomic_on_failure() {
        let mut pool = pool();
        let before = pool.total_free();
        // 5 bundles of 2 cores need 10 cores; pool has 8.
        let result = PlacementGroup::create(
            PlacementGroupId(2),
            &mut pool,
            ResourceBundle::cores_gib(2, 2),
            5,
        );
        assert!(result.is_err());
        assert_eq!(pool.total_free(), before, "failed create must roll back");
    }

    #[test]
    fn zero_count_group_is_empty() {
        let mut pool = pool();
        let pg = PlacementGroup::create(
            PlacementGroupId(3),
            &mut pool,
            ResourceBundle::cores_gib(1, 1),
            0,
        )
        .unwrap();
        assert!(pg.is_empty());
    }

    #[test]
    fn display_id() {
        assert_eq!(PlacementGroupId(7).to_string(), "pg-7");
    }
}
