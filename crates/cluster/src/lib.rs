//! The Logical Simulation substrate: a Ray-like cluster on Kubernetes-like
//! elastic nodes.
//!
//! The paper's logical simulation deploys Ray clusters on k8s nodes; a
//! master (*Ray Runner*) downloads data, configures runtime parameters and
//! launches *placement groups* of actors on worker nodes, each actor
//! sequentially simulating multiple devices (§IV-A). This crate reproduces
//! those scheduling semantics on virtual time:
//!
//! * [`NodePool`] — worker nodes with capacity, elastic scale-up/down.
//! * [`PlacementGroup`] — a set of resource bundles placed across nodes
//!   (first-fit-decreasing), all-or-nothing.
//! * [`LogicalCluster`] — job submission: splits a device population over
//!   the placement group's actors and produces a [`JobPlan`] with a virtual
//!   completion time per device. Per-actor *data/model download* costs are
//!   charged every round — the architectural realism that makes SimDC
//!   slower than in-memory simulators at small scale (Fig 8).
//!
//! # Examples
//!
//! ```
//! use simdc_cluster::{ClusterConfig, CostModel, JobSpec, LogicalCluster};
//! use simdc_simrt::RngStream;
//! use simdc_types::{DeviceGrade, DeviceId, RoundId, TaskId};
//!
//! let mut cluster = LogicalCluster::new(ClusterConfig::default());
//! let job = JobSpec {
//!     task: TaskId(1),
//!     round: RoundId(0),
//!     grade: DeviceGrade::High,
//!     devices: (0..100).map(DeviceId).collect(),
//!     unit_bundles: 80,              // f = 80 unit bundles
//!     units_per_device: 8,           // k = 8 → 10 actors
//!     payload_mib: 4.0,
//! };
//! let mut rng = RngStream::from_seed(1);
//! let plan = cluster.submit_job(&job, &mut rng).unwrap();
//! assert_eq!(plan.actor_count(), 10);
//! assert_eq!(plan.device_completions().len(), 100);
//! ```

pub mod cost;
pub mod node;
pub mod placement;
pub mod runner;

pub use cost::CostModel;
pub use node::{NodePool, WorkerNode};
pub use placement::{PlacementGroup, PlacementGroupId};
pub use runner::{ActorPlan, ClusterConfig, JobPlan, JobSpec, LogicalCluster};
