//! The Logical Simulation substrate: a Ray-like cluster on Kubernetes-like
//! elastic nodes.
//!
//! The paper's logical simulation deploys Ray clusters on k8s nodes; a
//! master (*Ray Runner*) downloads data, configures runtime parameters and
//! launches *placement groups* of actors on worker nodes, each actor
//! sequentially simulating multiple devices (§IV-A). This crate reproduces
//! those scheduling semantics on virtual time:
//!
//! * [`NodePool`] — worker nodes with capacity and an event-driven
//!   lifecycle: scale-up charges a boot latency before capacity becomes
//!   placeable, scale-in drains nodes and retires them once their last
//!   allocation releases.
//! * [`Autoscaler`] — the elastic policy: target-utilization scaling with
//!   a hysteresis band, a scale-in cooldown and a cost-budget cap priced
//!   by [`CostModel::node_hourly_cost`].
//! * [`PlacementGroup`] — a set of resource bundles placed across nodes
//!   (first-fit-decreasing), all-or-nothing, held for the owning task's
//!   whole lifetime.
//! * [`LogicalCluster`] — job submission: splits a device population over
//!   the placement group's actors and produces a [`JobPlan`] with a virtual
//!   completion time per device. Per-actor *data/model download* costs are
//!   charged every round — the architectural realism that makes SimDC
//!   slower than in-memory simulators at small scale (Fig 8).
//!
//! The cluster lives on the *platform's* clock: the owner calls
//! [`LogicalCluster::advance_to`] as virtual time moves, and
//! [`LogicalCluster::autoscale`] with its queued demand each scheduling
//! pass. Placement that does not fit the ready capacity is an error the
//! caller treats as *wait for the node-ready event*, not as failure.
//!
//! # Examples
//!
//! Submitting a job that fits the ready capacity:
//!
//! ```
//! use simdc_cluster::{ClusterConfig, CostModel, JobSpec, LogicalCluster};
//! use simdc_simrt::RngStream;
//! use simdc_types::{DeviceGrade, DeviceId, RoundId, TaskId};
//!
//! let mut cluster = LogicalCluster::new(ClusterConfig::default());
//! let job = JobSpec {
//!     task: TaskId(1),
//!     round: RoundId(0),
//!     grade: DeviceGrade::High,
//!     devices: (0..100).map(DeviceId).collect(),
//!     unit_bundles: 80,              // f = 80 unit bundles
//!     units_per_device: 8,           // k = 8 → 10 actors
//!     payload_mib: 4.0,
//! };
//! let mut rng = RngStream::from_seed(1);
//! let plan = cluster.submit_job(&job, &mut rng).unwrap();
//! assert_eq!(plan.actor_count(), 10);
//! assert_eq!(plan.device_completions().len(), 100);
//! ```
//!
//! A burst beyond the ready capacity blocks until the autoscaler's nodes
//! finish booting:
//!
//! ```
//! use simdc_cluster::{ClusterConfig, JobSpec, LogicalCluster, ScalingAction};
//! use simdc_simrt::RngStream;
//! use simdc_types::{DeviceGrade, DeviceId, RoundId, SimInstant, TaskId};
//!
//! let mut cluster = LogicalCluster::new(ClusterConfig::default());
//! let burst = JobSpec {
//!     task: TaskId(1),
//!     round: RoundId(0),
//!     grade: DeviceGrade::High,
//!     devices: (0..400).map(DeviceId).collect(),
//!     unit_bundles: 400,
//!     units_per_device: 1,
//!     payload_mib: 4.0,
//! };
//! let mut rng = RngStream::from_seed(7);
//! // 400 bundles > 200 ready cores: placement blocks (errors) for now.
//! assert!(cluster.submit_job(&burst, &mut rng).is_err());
//! // The autoscaler reacts to the queued demand with booting nodes…
//! let ScalingAction::ScaleUp { ready_at, .. } = cluster.autoscale(400, SimInstant::EPOCH)
//! else { panic!("queue pressure must scale up") };
//! // …and once the boot latency has elapsed, the same job places.
//! cluster.advance_to(ready_at);
//! assert_eq!(cluster.submit_job(&burst, &mut rng).unwrap().actor_count(), 400);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod autoscaler;
pub mod cost;
pub mod node;
pub mod placement;
pub mod runner;

pub use autoscaler::{Autoscaler, AutoscalerConfig, CostMeter, ScalingAction};
pub use cost::CostModel;
pub use node::{NodePool, NodeState, PoolTransition, WorkerNode};
pub use placement::{PlacementGroup, PlacementGroupId};
pub use runner::{
    ActorPlan, ClusterConfig, ClusterStats, JobPlan, JobSpec, LogicalCluster, RoundPlanner,
};
