//! The Ray Runner: job submission and actor scheduling.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use simdc_simrt::RngStream;
use simdc_types::{
    ActorId, DeviceGrade, DeviceId, NodeId, ResourceBundle, Result, RoundId, SimDuration,
    SimdcError, TaskId,
};

use crate::cost::CostModel;
use crate::node::NodePool;
use crate::placement::{PlacementGroup, PlacementGroupId};

/// Configuration of the logical-simulation cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Capacity of one worker node.
    pub node_template: ResourceBundle,
    /// Nodes started eagerly.
    pub initial_nodes: usize,
    /// Elastic-scaling ceiling.
    pub max_nodes: usize,
    /// The unit resource bundle (paper default: 1 core / 1 GiB).
    pub unit_bundle: ResourceBundle,
    /// Timing model.
    pub cost: CostModel,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        // Paper default: 200 CPU cores / 300 GB memory with elastic scaling.
        ClusterConfig {
            node_template: ResourceBundle::cores_gib(50, 75),
            initial_nodes: 4,
            max_nodes: 16,
            unit_bundle: ResourceBundle::cores_gib(1, 1),
            cost: CostModel::default(),
        }
    }
}

impl ClusterConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` for empty bundles, zero node counts or an
    /// invalid cost model.
    pub fn validate(&self) -> Result<()> {
        use SimdcError::InvalidConfig;
        if self.node_template.is_zero() {
            return Err(InvalidConfig("node_template must be non-empty".into()));
        }
        if self.unit_bundle.is_zero() {
            return Err(InvalidConfig("unit_bundle must be non-empty".into()));
        }
        if self.initial_nodes == 0 || self.initial_nodes > self.max_nodes {
            return Err(InvalidConfig(format!(
                "initial_nodes must be in [1, max_nodes], got {} (max {})",
                self.initial_nodes, self.max_nodes
            )));
        }
        if !self.node_template.contains(&self.unit_bundle) {
            return Err(InvalidConfig(
                "unit_bundle must fit on a single node".into(),
            ));
        }
        self.cost.validate()
    }
}

/// A single-grade, single-round simulation job (the paper's `f` and `k`
/// parameters, §IV-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Owning task.
    pub task: TaskId,
    /// Round being executed.
    pub round: RoundId,
    /// Device grade simulated by this job.
    pub grade: DeviceGrade,
    /// The devices to simulate (the optimizer's `x` of them end up here).
    pub devices: Vec<DeviceId>,
    /// Total unit bundles requested (`f`).
    pub unit_bundles: u32,
    /// Unit bundles consumed per simulated device (`k`); one actor holds
    /// `k` units, so the job runs `⌊f / k⌋` actors.
    pub units_per_device: u32,
    /// Data + model payload each actor downloads at round start, in MiB.
    pub payload_mib: f64,
}

impl JobSpec {
    /// Number of actors this job will launch.
    #[must_use]
    pub fn actor_count(&self) -> u32 {
        self.unit_bundles
            .checked_div(self.units_per_device)
            .unwrap_or(0)
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` when `k` is zero, `f < k` (no actor fits), or
    /// the payload is negative/not finite.
    pub fn validate(&self) -> Result<()> {
        use SimdcError::InvalidConfig;
        if self.units_per_device == 0 {
            return Err(InvalidConfig("units_per_device (k) must be > 0".into()));
        }
        if !self.devices.is_empty() && self.actor_count() == 0 {
            return Err(InvalidConfig(format!(
                "unit_bundles ({}) must be >= units_per_device ({}) to launch an actor",
                self.unit_bundles, self.units_per_device
            )));
        }
        if !self.payload_mib.is_finite() || self.payload_mib < 0.0 {
            return Err(InvalidConfig("payload_mib must be finite and >= 0".into()));
        }
        Ok(())
    }
}

/// One actor's schedule within a job plan. All offsets are relative to job
/// submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActorPlan {
    /// Actor identifier.
    pub actor: ActorId,
    /// Node hosting the actor.
    pub node: NodeId,
    /// When the actor is ready (placement + spawn).
    pub ready_at: SimDuration,
    /// Completion offset of each assigned device, in execution order.
    pub completions: Vec<(DeviceId, SimDuration)>,
    /// When the actor finished its last upload.
    pub finished_at: SimDuration,
}

/// The timed execution plan of a submitted job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobPlan {
    /// Owning task.
    pub task: TaskId,
    /// Round covered.
    pub round: RoundId,
    /// Grade simulated.
    pub grade: DeviceGrade,
    /// The placement group backing the job (release it when done).
    pub placement_group: PlacementGroupId,
    /// Per-actor schedules.
    pub actors: Vec<ActorPlan>,
    /// Time from submission until the slowest actor finished.
    pub makespan: SimDuration,
}

impl JobPlan {
    /// Number of actors launched.
    #[must_use]
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// All device completion offsets, flattened across actors.
    #[must_use]
    pub fn device_completions(&self) -> Vec<(DeviceId, SimDuration)> {
        let mut all: Vec<(DeviceId, SimDuration)> = self
            .actors
            .iter()
            .flat_map(|a| a.completions.iter().copied())
            .collect();
        all.sort_by_key(|&(_, at)| at);
        all
    }
}

/// The logical-simulation cluster: node pool + Ray-style job submission.
#[derive(Debug)]
pub struct LogicalCluster {
    pool: NodePool,
    unit: ResourceBundle,
    cost: CostModel,
    groups: HashMap<PlacementGroupId, PlacementGroup>,
    next_group: u64,
    next_actor: u64,
}

impl LogicalCluster {
    /// Builds a cluster from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid; call [`ClusterConfig::validate`]
    /// first for a recoverable error.
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        config.validate().expect("invalid cluster configuration");
        LogicalCluster {
            pool: NodePool::new(config.node_template, config.initial_nodes, config.max_nodes),
            unit: config.unit_bundle,
            cost: config.cost,
            groups: HashMap::new(),
            next_group: 0,
            next_actor: 0,
        }
    }

    /// The node pool (for capacity/utilization queries).
    #[must_use]
    pub fn pool(&self) -> &NodePool {
        &self.pool
    }

    /// The timing model.
    #[must_use]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Unit bundles placeable right now (elasticity not included).
    #[must_use]
    pub fn free_unit_bundles(&self) -> u64 {
        self.pool.placeable(&self.unit)
    }

    /// Number of active placement groups.
    #[must_use]
    pub fn active_jobs(&self) -> usize {
        self.groups.len()
    }

    /// Submits a job: reserves a placement group, splits devices over its
    /// actors and returns the timed plan. Resources stay reserved until
    /// [`LogicalCluster::release_job`].
    ///
    /// Devices are dealt to actors round-robin, so actor loads differ by at
    /// most one device — matching the paper's "each actor sequentially
    /// simulating multiple devices".
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` for a malformed spec and
    /// [`SimdcError::ResourceExhausted`] when the placement group does not
    /// fit even after elastic scale-up.
    pub fn submit_job(&mut self, job: &JobSpec, rng: &mut RngStream) -> Result<JobPlan> {
        job.validate()?;
        let actor_count = if job.devices.is_empty() {
            0
        } else {
            (job.actor_count() as usize).min(job.devices.len())
        };
        let actor_bundle = self.unit.scaled(u64::from(job.units_per_device));
        self.pool.scale_up_for(&actor_bundle, actor_count as u64);

        let pg_id = PlacementGroupId(self.next_group);
        self.next_group += 1;
        let group = PlacementGroup::create(pg_id, &mut self.pool, actor_bundle, actor_count)?;

        let ready_at = self.cost.pg_create.saturating_add(self.cost.actor_spawn);
        let download = self.cost.download_time(job.payload_mib);

        let mut actors: Vec<ActorPlan> = group
            .placements()
            .iter()
            .map(|&node| {
                let actor = ActorId(self.next_actor);
                self.next_actor += 1;
                ActorPlan {
                    actor,
                    node,
                    ready_at,
                    completions: Vec::new(),
                    finished_at: ready_at,
                }
            })
            .collect();

        // Deal devices round-robin, then walk each actor's queue
        // sequentially.
        let mut queues: Vec<Vec<DeviceId>> = vec![Vec::new(); actors.len()];
        let n_queues = queues.len().max(1);
        for (i, &dev) in job.devices.iter().enumerate() {
            queues[i % n_queues].push(dev);
        }
        let mut makespan = SimDuration::ZERO;
        for (actor, queue) in actors.iter_mut().zip(queues) {
            let mut t = ready_at.saturating_add(download);
            for dev in queue {
                t = t.saturating_add(self.cost.device_compute(job.grade, rng));
                actor.completions.push((dev, t));
                t = t.saturating_add(self.cost.upload_per_device);
            }
            actor.finished_at = t;
            makespan = makespan.max(t);
        }

        let plan = JobPlan {
            task: job.task,
            round: job.round,
            grade: job.grade,
            placement_group: pg_id,
            actors,
            makespan,
        };
        self.groups.insert(pg_id, group);
        Ok(plan)
    }

    /// Releases the resources of a finished job. Returns `false` if the
    /// group was unknown (already released).
    pub fn release_job(&mut self, id: PlacementGroupId) -> bool {
        match self.groups.remove(&id) {
            Some(group) => {
                group.release(&mut self.pool);
                true
            }
            None => false,
        }
    }

    /// Shrinks the pool back to `keep` nodes where idle.
    pub fn scale_down(&mut self, keep: usize) -> usize {
        self.pool.scale_down(keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> LogicalCluster {
        LogicalCluster::new(ClusterConfig::default())
    }

    fn job(n_devices: u64, f: u32, k: u32) -> JobSpec {
        JobSpec {
            task: TaskId(1),
            round: RoundId(0),
            grade: DeviceGrade::High,
            devices: (0..n_devices).map(DeviceId).collect(),
            unit_bundles: f,
            units_per_device: k,
            payload_mib: 4.0,
        }
    }

    #[test]
    fn devices_split_evenly_across_actors() {
        let mut c = cluster();
        let mut rng = RngStream::from_seed(1);
        let plan = c.submit_job(&job(100, 80, 8), &mut rng).unwrap();
        assert_eq!(plan.actor_count(), 10);
        for a in &plan.actors {
            assert_eq!(a.completions.len(), 10);
        }
        assert_eq!(plan.device_completions().len(), 100);
    }

    #[test]
    fn makespan_tracks_sequential_waves() {
        let mut c = LogicalCluster::new(ClusterConfig {
            cost: CostModel {
                jitter_frac: 0.0,
                ..CostModel::default()
            },
            ..ClusterConfig::default()
        });
        let mut rng = RngStream::from_seed(2);
        let plan = c.submit_job(&job(100, 80, 8), &mut rng).unwrap();
        let cost = c.cost();
        // 10 devices per actor → 10·(α + upload) + setup + download.
        let expected = cost
            .pg_create
            .saturating_add(cost.actor_spawn)
            .saturating_add(cost.download_time(4.0))
            .saturating_add(
                (cost
                    .alpha(DeviceGrade::High)
                    .saturating_add(cost.upload_per_device))
                    * 10,
            );
        assert_eq!(plan.makespan, expected);
    }

    #[test]
    fn more_actors_shorter_makespan() {
        let mut rng = RngStream::from_seed(3);
        let mut c1 = cluster();
        let narrow = c1.submit_job(&job(64, 8, 8), &mut rng).unwrap(); // 1 actor
        let mut c2 = cluster();
        let wide = c2.submit_job(&job(64, 64, 8), &mut rng).unwrap(); // 8 actors
        assert!(wide.makespan < narrow.makespan);
    }

    #[test]
    fn resources_are_held_until_release() {
        let mut c = cluster();
        let free_before = c.free_unit_bundles();
        let mut rng = RngStream::from_seed(4);
        let plan = c.submit_job(&job(100, 80, 8), &mut rng).unwrap();
        assert_eq!(c.free_unit_bundles(), free_before - 80);
        assert_eq!(c.active_jobs(), 1);
        assert!(c.release_job(plan.placement_group));
        assert_eq!(c.free_unit_bundles(), free_before);
        assert!(!c.release_job(plan.placement_group), "double release");
    }

    #[test]
    fn elastic_scale_up_handles_bursts() {
        let mut c = cluster(); // 4×50 cores initially, max 16 nodes
        let mut rng = RngStream::from_seed(5);
        // 600 unit bundles > initial 200 cores → needs scale-up.
        let plan = c.submit_job(&job(600, 600, 1), &mut rng).unwrap();
        assert_eq!(plan.actor_count(), 600);
        assert!(c.pool().len() > 4);
    }

    #[test]
    fn exhaustion_after_max_nodes_is_an_error() {
        let mut c = cluster(); // max 16 nodes × 50 cores = 800 cores
        let mut rng = RngStream::from_seed(6);
        let result = c.submit_job(&job(1_000, 1_000, 1), &mut rng);
        assert!(matches!(result, Err(SimdcError::ResourceExhausted { .. })));
        // Failed submission must not leak reservations.
        assert_eq!(
            c.free_unit_bundles(),
            c.pool().placeable(&ResourceBundle::cores_gib(1, 1))
        );
        assert_eq!(c.active_jobs(), 0);
    }

    #[test]
    fn empty_device_list_yields_empty_plan() {
        let mut c = cluster();
        let mut rng = RngStream::from_seed(7);
        let plan = c.submit_job(&job(0, 80, 8), &mut rng).unwrap();
        assert_eq!(plan.actor_count(), 0);
        assert_eq!(plan.makespan, SimDuration::ZERO);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut c = cluster();
        let mut rng = RngStream::from_seed(8);
        assert!(c.submit_job(&job(10, 80, 0), &mut rng).is_err());
        assert!(c.submit_job(&job(10, 4, 8), &mut rng).is_err()); // f < k
        let mut bad = job(10, 80, 8);
        bad.payload_mib = f64::NAN;
        assert!(c.submit_job(&bad, &mut rng).is_err());
    }

    #[test]
    fn completions_are_monotone_within_actor() {
        let mut c = cluster();
        let mut rng = RngStream::from_seed(9);
        let plan = c.submit_job(&job(50, 40, 8), &mut rng).unwrap();
        for actor in &plan.actors {
            for pair in actor.completions.windows(2) {
                assert!(pair[0].1 < pair[1].1);
            }
            assert!(actor.finished_at >= actor.completions.last().unwrap().1);
        }
    }

    #[test]
    fn actor_count_capped_by_device_count() {
        let mut c = cluster();
        let mut rng = RngStream::from_seed(10);
        let plan = c.submit_job(&job(3, 80, 8), &mut rng).unwrap();
        assert_eq!(plan.actor_count(), 3, "no idle actors for tiny jobs");
    }
}
