//! The Ray Runner: job submission, placement-group lifecycle and actor
//! scheduling on the elastic node pool.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use simdc_simrt::RngStream;
use simdc_types::{
    ActorId, DeviceGrade, DeviceId, NodeId, ResourceBundle, Result, RoundId, SimDuration,
    SimInstant, SimdcError, TaskId,
};

use crate::autoscaler::{Autoscaler, AutoscalerConfig, CostMeter, ScalingAction};
use crate::cost::CostModel;
use crate::node::NodePool;
use crate::placement::{PlacementGroup, PlacementGroupId};

/// Configuration of the logical-simulation cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Capacity of one worker node.
    pub node_template: ResourceBundle,
    /// Nodes started eagerly (also the autoscaler's scale-in floor).
    pub initial_nodes: usize,
    /// Elastic-scaling ceiling.
    pub max_nodes: usize,
    /// The unit resource bundle (paper default: 1 core / 1 GiB).
    pub unit_bundle: ResourceBundle,
    /// Timing model.
    pub cost: CostModel,
    /// Elastic autoscaling policy.
    pub autoscaler: AutoscalerConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        // Paper default: 200 CPU cores / 300 GB memory with elastic scaling.
        ClusterConfig {
            node_template: ResourceBundle::cores_gib(50, 75),
            initial_nodes: 4,
            max_nodes: 16,
            unit_bundle: ResourceBundle::cores_gib(1, 1),
            cost: CostModel::default(),
            autoscaler: AutoscalerConfig::default(),
        }
    }
}

impl ClusterConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` for empty bundles, zero node counts or an
    /// invalid cost/autoscaler model.
    pub fn validate(&self) -> Result<()> {
        use SimdcError::InvalidConfig;
        if self.node_template.is_zero() {
            return Err(InvalidConfig("node_template must be non-empty".into()));
        }
        if self.unit_bundle.is_zero() {
            return Err(InvalidConfig("unit_bundle must be non-empty".into()));
        }
        if self.initial_nodes == 0 || self.initial_nodes > self.max_nodes {
            return Err(InvalidConfig(format!(
                "initial_nodes must be in [1, max_nodes], got {} (max {})",
                self.initial_nodes, self.max_nodes
            )));
        }
        if !self.node_template.contains(&self.unit_bundle) {
            return Err(InvalidConfig(
                "unit_bundle must fit on a single node".into(),
            ));
        }
        self.cost.validate()?;
        self.autoscaler.validate()
    }
}

/// A single-grade, single-round simulation job (the paper's `f` and `k`
/// parameters, §IV-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Owning task.
    pub task: TaskId,
    /// Round being executed.
    pub round: RoundId,
    /// Device grade simulated by this job.
    pub grade: DeviceGrade,
    /// The devices to simulate (the optimizer's `x` of them end up here).
    pub devices: Vec<DeviceId>,
    /// Total unit bundles requested (`f`).
    pub unit_bundles: u32,
    /// Unit bundles consumed per simulated device (`k`); one actor holds
    /// `k` units, so the job runs `⌊f / k⌋` actors.
    pub units_per_device: u32,
    /// Data + model payload each actor downloads at round start, in MiB.
    pub payload_mib: f64,
}

impl JobSpec {
    /// Number of actors this job will launch.
    #[must_use]
    pub fn actor_count(&self) -> u32 {
        self.unit_bundles
            .checked_div(self.units_per_device)
            .unwrap_or(0)
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` when `k` is zero, `f < k` (no actor fits), or
    /// the payload is negative/not finite.
    pub fn validate(&self) -> Result<()> {
        use SimdcError::InvalidConfig;
        if self.units_per_device == 0 {
            return Err(InvalidConfig("units_per_device (k) must be > 0".into()));
        }
        if !self.devices.is_empty() && self.actor_count() == 0 {
            return Err(InvalidConfig(format!(
                "unit_bundles ({}) must be >= units_per_device ({}) to launch an actor",
                self.unit_bundles, self.units_per_device
            )));
        }
        if !self.payload_mib.is_finite() || self.payload_mib < 0.0 {
            return Err(InvalidConfig("payload_mib must be finite and >= 0".into()));
        }
        Ok(())
    }
}

/// One actor's schedule within a job plan. All offsets are relative to job
/// submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActorPlan {
    /// Actor identifier.
    pub actor: ActorId,
    /// Node hosting the actor.
    pub node: NodeId,
    /// When the actor is ready (placement + spawn).
    pub ready_at: SimDuration,
    /// Completion offset of each assigned device, in execution order.
    pub completions: Vec<(DeviceId, SimDuration)>,
    /// When the actor finished its last upload.
    pub finished_at: SimDuration,
}

/// The timed execution plan of a submitted job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobPlan {
    /// Owning task.
    pub task: TaskId,
    /// Round covered.
    pub round: RoundId,
    /// Grade simulated.
    pub grade: DeviceGrade,
    /// The placement group backing the job (release it when done).
    pub placement_group: PlacementGroupId,
    /// Per-actor schedules.
    pub actors: Vec<ActorPlan>,
    /// Time from submission until the slowest actor finished.
    pub makespan: SimDuration,
}

impl JobPlan {
    /// Number of actors launched.
    #[must_use]
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// All device completion offsets, flattened across actors.
    #[must_use]
    pub fn device_completions(&self) -> Vec<(DeviceId, SimDuration)> {
        let mut all: Vec<(DeviceId, SimDuration)> = self
            .actors
            .iter()
            .flat_map(|a| a.completions.iter().copied())
            .collect();
        all.sort_by_key(|&(_, at)| at);
        all
    }
}

/// A point-in-time view of the elastic tier (what the elasticity bench
/// samples into its time series).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Physical nodes in any lifecycle state.
    pub nodes: u64,
    /// Nodes up and accepting placements.
    pub ready: u64,
    /// Nodes still booting.
    pub booting: u64,
    /// Nodes draining toward retirement.
    pub draining: u64,
    /// Nodes ever booted (including the initial set).
    pub booted_total: u64,
    /// Nodes ever retired.
    pub retired_total: u64,
    /// Largest physical footprint ever reached.
    pub peak_nodes: u64,
    /// Ready-capacity CPU utilization, in `[0, 1]`.
    pub utilization: f64,
    /// Cumulative node-time spend so far (accrued through the last
    /// lifecycle advance).
    pub cost_accrued: f64,
}

/// The logical-simulation cluster: elastic node pool + Ray-style job
/// submission, living on the platform's virtual clock.
///
/// The platform owns the clock: it calls [`LogicalCluster::advance_to`]
/// whenever its own clock moves, which promotes booting nodes, retires
/// drained ones and accrues node cost. [`LogicalCluster::autoscale`] is the
/// policy hook the platform invokes each scheduling pass with its queued
/// demand.
#[derive(Debug)]
pub struct LogicalCluster {
    pool: NodePool,
    unit: ResourceBundle,
    cost: CostModel,
    autoscaler: Autoscaler,
    meter: CostMeter,
    groups: BTreeMap<PlacementGroupId, PlacementGroup>,
    next_group: u64,
    next_actor: u64,
    clock: SimInstant,
}

impl LogicalCluster {
    /// Builds a cluster from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid; call [`ClusterConfig::validate`]
    /// first for a recoverable error.
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        config.validate().expect("invalid cluster configuration");
        LogicalCluster {
            pool: NodePool::new(config.node_template, config.initial_nodes, config.max_nodes),
            unit: config.unit_bundle,
            cost: config.cost,
            autoscaler: Autoscaler::new(config.autoscaler).with_min_nodes(config.initial_nodes),
            meter: CostMeter::new(SimInstant::EPOCH),
            groups: BTreeMap::new(),
            next_group: 0,
            next_actor: 0,
            clock: SimInstant::EPOCH,
        }
    }

    /// The node pool (for capacity/utilization queries).
    #[must_use]
    pub fn pool(&self) -> &NodePool {
        &self.pool
    }

    /// The timing model.
    #[must_use]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The cluster's clock — the instant of the last
    /// [`LogicalCluster::advance_to`] (owned and driven by the platform).
    #[must_use]
    pub fn now(&self) -> SimInstant {
        self.clock
    }

    /// Advances the elastic tier to `now`: accrues node cost at the
    /// current footprint, promotes booting nodes whose ready instant has
    /// passed, and retires idle draining nodes. Instants in the past are
    /// ignored (the clock never rolls back).
    pub fn advance_to(&mut self, now: SimInstant) {
        if now < self.clock {
            return;
        }
        self.meter
            .accrue(self.pool.len(), self.cost.node_hourly_cost, now);
        self.pool.advance_to(now);
        self.clock = now;
    }

    /// The earliest instant a booting node becomes ready — where the
    /// platform schedules its node-ready event. `None` when nothing is
    /// booting.
    #[must_use]
    pub fn next_node_ready(&self) -> Option<SimInstant> {
        self.pool.next_ready_at()
    }

    /// One autoscaling pass: reacts to `demand_units` of queued
    /// unit-bundle demand at instant `now` (see [`Autoscaler::assess`]).
    /// Scale-ups charge [`CostModel::node_boot`] before the capacity is
    /// placeable; the returned action carries the ready instant.
    pub fn autoscale(&mut self, demand_units: u64, now: SimInstant) -> ScalingAction {
        self.autoscaler.assess(
            &mut self.pool,
            &self.unit,
            demand_units,
            self.cost.node_boot,
            self.cost.node_hourly_cost,
            now,
        )
    }

    /// Unit bundles placeable right now on ready nodes.
    #[must_use]
    pub fn free_unit_bundles(&self) -> u64 {
        self.pool.placeable(&self.unit)
    }

    /// Unit bundles the *ready* nodes hold at full capacity — what the
    /// Resource Manager's total resyncs to each scheduling pass.
    #[must_use]
    pub fn ready_unit_capacity(&self) -> u64 {
        self.pool.unit_capacity(&self.unit)
    }

    /// Unit bundles the cluster could ever offer: the elastic ceiling
    /// (`max_nodes`, further capped by the autoscaler's budget) at full
    /// capacity. Admission feasibility checks against this, so a task
    /// needing a scale-out is queued rather than rejected.
    #[must_use]
    pub fn capacity_ceiling_units(&self) -> u64 {
        let cap = self
            .autoscaler
            .node_cap(&self.pool, self.cost.node_hourly_cost);
        cap as u64 * self.pool.template().max_bundles(&self.unit)
    }

    /// Whether `(bundle, count)` requests could be placed together on the
    /// ready nodes right now (side-effect-free trial).
    #[must_use]
    pub fn can_place_all(&self, requests: &[(ResourceBundle, u64)]) -> bool {
        self.pool.can_place_all(requests)
    }

    /// Whether the requests could ever be placed at the elastic ceiling
    /// (empty nodes, budget cap applied) — fragmentation-aware admission
    /// feasibility.
    #[must_use]
    pub fn could_ever_place(&self, requests: &[(ResourceBundle, u64)]) -> bool {
        let cap = self
            .autoscaler
            .node_cap(&self.pool, self.cost.node_hourly_cost);
        self.pool.could_ever_place(requests, cap)
    }

    /// The actor resource bundle a job of `units_per_device` (`k`) uses.
    #[must_use]
    pub fn actor_bundle(&self, units_per_device: u64) -> ResourceBundle {
        self.unit.scaled(units_per_device)
    }

    /// Cumulative node-time spend accrued so far.
    #[must_use]
    pub fn cost_accrued(&self) -> f64 {
        self.meter.accrued()
    }

    /// Cumulative billed node-seconds (the quantity
    /// [`LogicalCluster::cost_accrued`] prices at the hourly rate).
    #[must_use]
    pub fn node_seconds(&self) -> f64 {
        self.meter.node_seconds()
    }

    /// Flushes the cost meter to `now` and returns the total spend: the
    /// scenario-end billing point, so a run ending mid-hour still pays for
    /// its final partial node-hour. Advances the whole lifecycle (it is
    /// `advance_to` plus the return value), so retire boundaries bill the
    /// same way they do mid-run.
    pub fn finalize_cost(&mut self, now: SimInstant) -> f64 {
        self.advance_to(now);
        self.meter.accrued()
    }

    /// Elasticity snapshot for reporting.
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            nodes: self.pool.len() as u64,
            ready: self.pool.ready_count() as u64,
            booting: self.pool.booting_count() as u64,
            draining: self.pool.draining_count() as u64,
            booted_total: self.pool.booted_total(),
            retired_total: self.pool.retired_total(),
            peak_nodes: self.pool.peak_nodes() as u64,
            utilization: self.pool.cpu_utilization(),
            cost_accrued: self.meter.accrued(),
        }
    }

    /// Number of active placement groups.
    #[must_use]
    pub fn active_jobs(&self) -> usize {
        self.groups.len()
    }

    /// Number of actor placements an acquired group holds — how many
    /// actor ids one planned round over it consumes. `None` for unknown
    /// (released) groups.
    #[must_use]
    pub fn group_size(&self, pg_id: PlacementGroupId) -> Option<usize> {
        self.groups.get(&pg_id).map(|g| g.placements().len())
    }

    /// Atomically reserves a placement group of `count` copies of
    /// `bundle` on the ready nodes. The group stays reserved — blocking
    /// scale-in of its nodes — until [`LogicalCluster::release_job`].
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::ResourceExhausted`] when the group does not
    /// fit the *currently ready* capacity. Booting capacity does not
    /// count: callers wait for the node-ready event and retry rather than
    /// treating this as fatal.
    pub fn acquire_group(
        &mut self,
        bundle: ResourceBundle,
        count: usize,
    ) -> Result<PlacementGroupId> {
        let pg_id = PlacementGroupId(self.next_group);
        self.next_group += 1;
        let group = PlacementGroup::create(pg_id, &mut self.pool, bundle, count)?;
        self.groups.insert(pg_id, group);
        Ok(pg_id)
    }

    /// Computes the timed per-round schedule of `job` over an already
    /// acquired placement group: deal devices round-robin over the
    /// group's actors, charge the per-round placement+spawn setup and the
    /// per-actor data/model download, then walk each actor's queue
    /// sequentially. The group's reservation is untouched — one group
    /// serves every round of its task.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` for a malformed spec or an unknown group.
    pub fn plan_round_on_group(
        &mut self,
        pg_id: PlacementGroupId,
        job: &JobSpec,
        rng: &mut RngStream,
    ) -> Result<JobPlan> {
        let group = self
            .groups
            .get(&pg_id)
            .ok_or_else(|| SimdcError::InvalidConfig(format!("unknown placement group {pg_id}")))?;
        plan_round_over(
            &self.cost,
            pg_id,
            group.placements(),
            job,
            rng,
            &mut self.next_actor,
        )
    }

    /// Reserves a contiguous block of `n` actor ids and returns the first.
    /// Worker shards planning rounds against a [`RoundPlanner`] snapshot
    /// draw from their reserved block instead of this shared counter, so a
    /// threaded plan allocates exactly the ids the sequential path would.
    pub fn reserve_actor_ids(&mut self, n: u64) -> u64 {
        let base = self.next_actor;
        self.next_actor += n;
        base
    }

    /// An immutable snapshot of everything round planning reads — the
    /// timing model plus each acquired group's node placements — for
    /// plan-phase work running off-thread. Planning through the snapshot
    /// and through [`LogicalCluster::plan_round_on_group`] share one code
    /// path, so rng draw order and every offset are bit-identical.
    #[must_use]
    pub fn round_planner(&self) -> RoundPlanner {
        RoundPlanner {
            cost: self.cost.clone(),
            groups: self
                .groups
                .iter()
                .map(|(&id, g)| (id, g.placements().to_vec()))
                .collect(),
        }
    }

    /// Submits a one-shot job: acquires a placement group against the
    /// currently ready capacity and returns the timed plan. Resources stay
    /// reserved until [`LogicalCluster::release_job`].
    ///
    /// Devices are dealt to actors round-robin, so actor loads differ by at
    /// most one device — matching the paper's "each actor sequentially
    /// simulating multiple devices".
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` for a malformed spec and
    /// [`SimdcError::ResourceExhausted`] when the placement group does not
    /// fit the ready capacity. Submission does *not* scale the pool: boot
    /// more nodes first (e.g. via [`LogicalCluster::autoscale`]) and let
    /// the boot latency elapse — capacity is never usable at the request
    /// instant.
    pub fn submit_job(&mut self, job: &JobSpec, rng: &mut RngStream) -> Result<JobPlan> {
        job.validate()?;
        let actor_count = if job.devices.is_empty() {
            0
        } else {
            (job.actor_count() as usize).min(job.devices.len())
        };
        let actor_bundle = self.unit.scaled(u64::from(job.units_per_device));
        let pg_id = self.acquire_group(actor_bundle, actor_count)?;
        match self.plan_round_on_group(pg_id, job, rng) {
            Ok(plan) => Ok(plan),
            Err(err) => {
                self.release_job(pg_id);
                Err(err)
            }
        }
    }

    /// Releases the resources of a finished job. Returns `false` if the
    /// group was unknown (already released).
    pub fn release_job(&mut self, id: PlacementGroupId) -> bool {
        match self.groups.remove(&id) {
            Some(group) => {
                group.release(&mut self.pool);
                true
            }
            None => false,
        }
    }

    /// Shrinks the pool back to `keep` nodes where idle (immediate
    /// administrative scale-down; the autoscaler's drain-then-retire path
    /// is [`LogicalCluster::autoscale`]).
    pub fn scale_down(&mut self, keep: usize) -> usize {
        self.pool.scale_down(keep)
    }
}

/// An immutable snapshot of the cluster state round planning reads: the
/// timing model and each acquired placement group's node list. Built by
/// [`LogicalCluster::round_planner`]; safe to move to a worker thread and
/// plan against while the live cluster keeps serving commits, because round
/// planning never touches pool occupancy — only the shared actor-id counter,
/// which workers replace with a block from
/// [`LogicalCluster::reserve_actor_ids`].
#[derive(Debug, Clone)]
pub struct RoundPlanner {
    cost: CostModel,
    groups: BTreeMap<PlacementGroupId, Vec<NodeId>>,
}

impl RoundPlanner {
    /// Plans one round of `job` over the snapshotted group `pg_id`,
    /// drawing actor ids from `next_actor` (a cursor into the caller's
    /// reserved block). Identical in every byte to
    /// [`LogicalCluster::plan_round_on_group`] given the same inputs.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` for a malformed spec or a group missing
    /// from the snapshot.
    pub fn plan_round_on_group(
        &self,
        pg_id: PlacementGroupId,
        job: &JobSpec,
        rng: &mut RngStream,
        next_actor: &mut u64,
    ) -> Result<JobPlan> {
        let placements = self
            .groups
            .get(&pg_id)
            .ok_or_else(|| SimdcError::InvalidConfig(format!("unknown placement group {pg_id}")))?;
        plan_round_over(&self.cost, pg_id, placements, job, rng, next_actor)
    }
}

/// The one round-planning code path, shared by the live cluster and the
/// [`RoundPlanner`] snapshot so the two can never drift: deal devices
/// round-robin over one actor per placement, charge setup + download, then
/// walk each actor's queue sequentially. `next_actor` is the id cursor —
/// the cluster passes its own counter, workers a reserved block.
fn plan_round_over(
    cost: &CostModel,
    pg_id: PlacementGroupId,
    placements: &[NodeId],
    job: &JobSpec,
    rng: &mut RngStream,
    next_actor: &mut u64,
) -> Result<JobPlan> {
    job.validate()?;

    let ready_at = cost.pg_create.saturating_add(cost.actor_spawn);
    let download = cost.download_time(job.payload_mib);

    let mut actors: Vec<ActorPlan> = placements
        .iter()
        .map(|&node| {
            let actor = ActorId(*next_actor);
            *next_actor += 1;
            ActorPlan {
                actor,
                node,
                ready_at,
                completions: Vec::new(),
                finished_at: ready_at,
            }
        })
        .collect();

    // Deal devices round-robin, then walk each actor's queue
    // sequentially.
    let mut queues: Vec<Vec<DeviceId>> = vec![Vec::new(); actors.len()];
    let n_queues = queues.len().max(1);
    for (i, &dev) in job.devices.iter().enumerate() {
        queues[i % n_queues].push(dev);
    }
    let mut makespan = SimDuration::ZERO;
    for (actor, queue) in actors.iter_mut().zip(queues) {
        let mut t = ready_at.saturating_add(download);
        for dev in queue {
            t = t.saturating_add(cost.device_compute(job.grade, rng));
            actor.completions.push((dev, t));
            t = t.saturating_add(cost.upload_per_device);
        }
        actor.finished_at = t;
        makespan = makespan.max(t);
    }

    Ok(JobPlan {
        task: job.task,
        round: job.round,
        grade: job.grade,
        placement_group: pg_id,
        actors,
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> LogicalCluster {
        LogicalCluster::new(ClusterConfig::default())
    }

    fn job(n_devices: u64, f: u32, k: u32) -> JobSpec {
        JobSpec {
            task: TaskId(1),
            round: RoundId(0),
            grade: DeviceGrade::High,
            devices: (0..n_devices).map(DeviceId).collect(),
            unit_bundles: f,
            units_per_device: k,
            payload_mib: 4.0,
        }
    }

    #[test]
    fn devices_split_evenly_across_actors() {
        let mut c = cluster();
        let mut rng = RngStream::from_seed(1);
        let plan = c.submit_job(&job(100, 80, 8), &mut rng).unwrap();
        assert_eq!(plan.actor_count(), 10);
        for a in &plan.actors {
            assert_eq!(a.completions.len(), 10);
        }
        assert_eq!(plan.device_completions().len(), 100);
    }

    #[test]
    fn makespan_tracks_sequential_waves() {
        let mut c = LogicalCluster::new(ClusterConfig {
            cost: CostModel {
                jitter_frac: 0.0,
                ..CostModel::default()
            },
            ..ClusterConfig::default()
        });
        let mut rng = RngStream::from_seed(2);
        let plan = c.submit_job(&job(100, 80, 8), &mut rng).unwrap();
        let cost = c.cost();
        // 10 devices per actor → 10·(α + upload) + setup + download.
        let expected = cost
            .pg_create
            .saturating_add(cost.actor_spawn)
            .saturating_add(cost.download_time(4.0))
            .saturating_add(
                (cost
                    .alpha(DeviceGrade::High)
                    .saturating_add(cost.upload_per_device))
                    * 10,
            );
        assert_eq!(plan.makespan, expected);
    }

    #[test]
    fn more_actors_shorter_makespan() {
        let mut rng = RngStream::from_seed(3);
        let mut c1 = cluster();
        let narrow = c1.submit_job(&job(64, 8, 8), &mut rng).unwrap(); // 1 actor
        let mut c2 = cluster();
        let wide = c2.submit_job(&job(64, 64, 8), &mut rng).unwrap(); // 8 actors
        assert!(wide.makespan < narrow.makespan);
    }

    #[test]
    fn resources_are_held_until_release() {
        let mut c = cluster();
        let free_before = c.free_unit_bundles();
        let mut rng = RngStream::from_seed(4);
        let plan = c.submit_job(&job(100, 80, 8), &mut rng).unwrap();
        assert_eq!(c.free_unit_bundles(), free_before - 80);
        assert_eq!(c.active_jobs(), 1);
        assert!(c.release_job(plan.placement_group));
        assert_eq!(c.free_unit_bundles(), free_before);
        assert!(!c.release_job(plan.placement_group), "double release");
    }

    /// Submission no longer silently scales the pool: a burst beyond the
    /// ready capacity *waits* for an autoscale + boot latency, and only
    /// then places. This is the virtual-time half of the boot-latency
    /// regression (the pool-level half lives in `node.rs`).
    #[test]
    fn burst_blocks_until_scale_up_boots() {
        let mut c = cluster(); // 4×50 cores ready, max 16 nodes
        let mut rng = RngStream::from_seed(5);
        // 600 unit bundles > ready 200 cores: placement must fail *now* —
        // no capacity may materialize at the call instant.
        let burst = job(600, 600, 1);
        assert!(matches!(
            c.submit_job(&burst, &mut rng),
            Err(SimdcError::ResourceExhausted { .. })
        ));
        assert_eq!(c.active_jobs(), 0, "failed submission must not leak");

        // The autoscaler reacts to the queued demand...
        let action = c.autoscale(600, SimInstant::EPOCH);
        let ScalingAction::ScaleUp { ready_at, .. } = action else {
            panic!("expected scale-up, got {action:?}");
        };
        assert_eq!(ready_at, SimInstant::EPOCH + c.cost().node_boot);
        // ...but the capacity is still not placeable before the boot
        // latency has elapsed.
        assert!(c.submit_job(&burst, &mut rng).is_err());
        c.advance_to(ready_at - SimDuration::from_millis(1));
        assert!(c.submit_job(&burst, &mut rng).is_err());

        // Once the nodes are up, the same job places.
        c.advance_to(ready_at);
        let plan = c.submit_job(&burst, &mut rng).unwrap();
        assert_eq!(plan.actor_count(), 600);
        assert!(c.pool().len() > 4);
        assert!(c.cost_accrued() > 0.0, "node time was billed");
    }

    #[test]
    fn exhaustion_after_max_nodes_is_an_error() {
        let mut c = cluster(); // max 16 nodes × 50 cores = 800 cores
        let mut rng = RngStream::from_seed(6);
        // Even fully scaled out (and booted), 1,000 bundles cannot fit.
        c.autoscale(1_000, SimInstant::EPOCH);
        c.advance_to(SimInstant::EPOCH + SimDuration::from_mins(5));
        let result = c.submit_job(&job(1_000, 1_000, 1), &mut rng);
        assert!(matches!(result, Err(SimdcError::ResourceExhausted { .. })));
        // Failed submission must not leak reservations.
        assert_eq!(
            c.free_unit_bundles(),
            c.pool().placeable(&ResourceBundle::cores_gib(1, 1))
        );
        assert_eq!(c.active_jobs(), 0);
        assert!(!c.could_ever_place(&[(ResourceBundle::cores_gib(1, 1), 1_000)]));
    }

    #[test]
    fn one_group_serves_every_round_of_a_task() {
        let mut c = cluster();
        let mut rng = RngStream::from_seed(12);
        let bundle = c.actor_bundle(8);
        let pg = c.acquire_group(bundle, 10).unwrap();
        let free_after_acquire = c.free_unit_bundles();
        for round in 0..3u32 {
            let mut j = job(100, 80, 8);
            j.round = RoundId(round);
            let plan = c.plan_round_on_group(pg, &j, &mut rng).unwrap();
            assert_eq!(plan.actor_count(), 10);
            // Planning rounds does not consume further capacity.
            assert_eq!(c.free_unit_bundles(), free_after_acquire);
        }
        assert!(c.release_job(pg));
        assert_eq!(c.free_unit_bundles(), 200);
    }

    #[test]
    fn plan_round_rejects_unknown_group() {
        let mut c = cluster();
        let mut rng = RngStream::from_seed(13);
        let err = c
            .plan_round_on_group(PlacementGroupId(99), &job(10, 80, 8), &mut rng)
            .unwrap_err();
        assert!(matches!(err, SimdcError::InvalidConfig(_)));
    }

    #[test]
    fn empty_device_list_yields_empty_plan() {
        let mut c = cluster();
        let mut rng = RngStream::from_seed(7);
        let plan = c.submit_job(&job(0, 80, 8), &mut rng).unwrap();
        assert_eq!(plan.actor_count(), 0);
        assert_eq!(plan.makespan, SimDuration::ZERO);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut c = cluster();
        let mut rng = RngStream::from_seed(8);
        assert!(c.submit_job(&job(10, 80, 0), &mut rng).is_err());
        assert!(c.submit_job(&job(10, 4, 8), &mut rng).is_err()); // f < k
        let mut bad = job(10, 80, 8);
        bad.payload_mib = f64::NAN;
        assert!(c.submit_job(&bad, &mut rng).is_err());
    }

    #[test]
    fn completions_are_monotone_within_actor() {
        let mut c = cluster();
        let mut rng = RngStream::from_seed(9);
        let plan = c.submit_job(&job(50, 40, 8), &mut rng).unwrap();
        for actor in &plan.actors {
            for pair in actor.completions.windows(2) {
                assert!(pair[0].1 < pair[1].1);
            }
            assert!(actor.finished_at >= actor.completions.last().unwrap().1);
        }
    }

    #[test]
    fn actor_count_capped_by_device_count() {
        let mut c = cluster();
        let mut rng = RngStream::from_seed(10);
        let plan = c.submit_job(&job(3, 80, 8), &mut rng).unwrap();
        assert_eq!(plan.actor_count(), 3, "no idle actors for tiny jobs");
    }

    #[test]
    fn stats_track_the_elastic_lifecycle() {
        let mut c = cluster();
        let s0 = c.stats();
        assert_eq!(s0.nodes, 4);
        assert_eq!(s0.ready, 4);
        assert_eq!(s0.peak_nodes, 4);
        assert_eq!(s0.cost_accrued, 0.0);
        c.autoscale(400, SimInstant::EPOCH);
        let s1 = c.stats();
        assert!(s1.booting > 0);
        assert_eq!(s1.ready, 4);
        c.advance_to(SimInstant::EPOCH + SimDuration::from_mins(2));
        let s2 = c.stats();
        assert_eq!(s2.booting, 0);
        assert_eq!(s2.ready, s1.nodes);
        assert!(s2.peak_nodes > 4);
        assert!(s2.cost_accrued > 0.0);
        // Idle and over-provisioned: scale-in drains back toward the floor.
        let action = c.autoscale(0, SimInstant::EPOCH + SimDuration::from_mins(10));
        assert!(matches!(action, ScalingAction::ScaleIn { .. }));
        c.advance_to(SimInstant::EPOCH + SimDuration::from_mins(10) + SimDuration::from_secs(1));
        assert_eq!(c.stats().nodes, 4, "idle drained nodes retire");
        assert!(c.stats().retired_total > 0);
    }
}
