//! The timing model of the logical simulation.

use serde::{Deserialize, Serialize};
use simdc_simrt::RngStream;
use simdc_types::{DeviceGrade, PerGrade, SimDuration};

/// Virtual-time costs of cluster operations.
///
/// Calibrated so the *shapes* of the paper's Fig 7/8 hold (see
/// `DESIGN.md` → "Timing calibration"): per-device compute times `α` match
/// the training-stage durations of Table I within a few percent, and every
/// actor pays a data/model download each round — the overhead that makes
/// SimDC slower than in-memory simulators below ~1,000 devices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// One-time placement-group creation latency per job.
    pub pg_create: SimDuration,
    /// Spawn latency per actor (paid once per job, actors start in
    /// parallel).
    pub actor_spawn: SimDuration,
    /// Fixed part of the per-actor, per-round data+model download.
    pub download_base: SimDuration,
    /// Variable download cost per MiB of payload.
    pub download_per_mib: SimDuration,
    /// Per-device result upload to shared storage + cloud notification.
    pub upload_per_device: SimDuration,
    /// Per-device compute time `α` by grade.
    pub compute_per_device: PerGrade<SimDuration>,
    /// Multiplicative jitter applied to each device's compute time,
    /// uniform in `[1 - jitter_frac, 1 + jitter_frac]`.
    pub jitter_frac: f64,
    /// Elastic node boot latency: a scale-up's capacity only becomes
    /// visible to placement this long after it was requested (k8s node
    /// provisioning + kubelet ready).
    pub node_boot: SimDuration,
    /// Cost of keeping one node up for one hour, in abstract currency
    /// units — what the autoscaler's budget cap and the cost meter price
    /// node time with.
    pub node_hourly_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            pg_create: SimDuration::from_millis(1_500),
            actor_spawn: SimDuration::from_millis(800),
            download_base: SimDuration::from_millis(600),
            download_per_mib: SimDuration::from_millis(80),
            upload_per_device: SimDuration::from_millis(120),
            // α: High 20 s, Low 26 s — deliberately slower per device than
            // the phones' β (16.2 s / 21.6 s, Table I): the paper notes the
            // C++ MNN operators of device simulation "execute faster" than
            // the PyMNN logical operators, which produces Fig 7's
            // large-scale crossover.
            compute_per_device: PerGrade::from_parts(
                SimDuration::from_secs(20),
                SimDuration::from_secs(26),
            ),
            jitter_frac: 0.05,
            // ~45 s from scale-up request to schedulable node, the order
            // k8s cluster autoscalers achieve on warm capacity pools.
            node_boot: SimDuration::from_secs(45),
            node_hourly_cost: 1.0,
        }
    }
}

impl CostModel {
    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` if `jitter_frac` is outside `[0, 1)` or any
    /// compute time is zero.
    pub fn validate(&self) -> simdc_types::Result<()> {
        use simdc_types::SimdcError::InvalidConfig;
        if !(0.0..1.0).contains(&self.jitter_frac) {
            return Err(InvalidConfig(format!(
                "jitter_frac must be in [0, 1), got {}",
                self.jitter_frac
            )));
        }
        for (grade, d) in self.compute_per_device.iter() {
            if d.is_zero() {
                return Err(InvalidConfig(format!(
                    "compute_per_device[{grade}] must be positive"
                )));
            }
        }
        if !self.node_hourly_cost.is_finite() || self.node_hourly_cost < 0.0 {
            return Err(InvalidConfig(format!(
                "node_hourly_cost must be finite and >= 0, got {}",
                self.node_hourly_cost
            )));
        }
        Ok(())
    }

    /// The per-actor round download time for a payload of `payload_mib`.
    #[must_use]
    pub fn download_time(&self, payload_mib: f64) -> SimDuration {
        self.download_base
            .saturating_add(self.download_per_mib.mul_f64(payload_mib.max(0.0)))
    }

    /// One device's compute time with jitter applied.
    #[must_use]
    pub fn device_compute(&self, grade: DeviceGrade, rng: &mut RngStream) -> SimDuration {
        let base = *self.compute_per_device.get(grade);
        if self.jitter_frac == 0.0 {
            return base;
        }
        let factor = rng.uniform_range(1.0 - self.jitter_frac, 1.0 + self.jitter_frac);
        base.mul_f64(factor)
    }

    /// Deterministic mean compute time (no jitter), used by the allocation
    /// optimizer as its `α` parameter.
    #[must_use]
    pub fn alpha(&self, grade: DeviceGrade) -> SimDuration {
        *self.compute_per_device.get(grade)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert!(CostModel::default().validate().is_ok());
    }

    #[test]
    fn invalid_jitter_rejected() {
        let m = CostModel {
            jitter_frac: 1.0,
            ..CostModel::default()
        };
        assert!(m.validate().is_err());
        let m = CostModel {
            jitter_frac: -0.1,
            ..CostModel::default()
        };
        assert!(m.validate().is_err());
    }

    #[test]
    fn zero_compute_rejected() {
        let m = CostModel {
            compute_per_device: PerGrade::from_parts(SimDuration::ZERO, SimDuration::from_secs(1)),
            ..CostModel::default()
        };
        assert!(m.validate().is_err());
    }

    #[test]
    fn download_scales_with_payload() {
        let m = CostModel::default();
        let small = m.download_time(1.0);
        let big = m.download_time(10.0);
        assert!(big > small);
        assert_eq!(m.download_time(0.0), m.download_base);
        // Negative payloads are clamped.
        assert_eq!(m.download_time(-5.0), m.download_base);
    }

    #[test]
    fn jitter_stays_in_band() {
        let m = CostModel::default();
        let mut rng = RngStream::from_seed(3);
        let base = m.alpha(DeviceGrade::High).as_secs_f64();
        for _ in 0..1_000 {
            let d = m.device_compute(DeviceGrade::High, &mut rng).as_secs_f64();
            assert!(d >= base * 0.95 - 1e-9 && d <= base * 1.05 + 1e-9, "{d}");
        }
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let m = CostModel {
            jitter_frac: 0.0,
            ..CostModel::default()
        };
        let mut rng = RngStream::from_seed(4);
        assert_eq!(
            m.device_compute(DeviceGrade::Low, &mut rng),
            m.alpha(DeviceGrade::Low)
        );
    }

    #[test]
    fn high_grade_is_faster() {
        let m = CostModel::default();
        assert!(m.alpha(DeviceGrade::High) < m.alpha(DeviceGrade::Low));
    }
}
