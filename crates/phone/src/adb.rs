//! The emulated ADB shell.
//!
//! Supports exactly the command surface §IV-C of the paper uses for
//! performance measurement, including `| grep …` post-filtering:
//!
//! * `cat /sys/class/power_supply/battery/current_now` — µA integer
//! * `cat /sys/class/power_supply/battery/voltage_now` — µV integer
//! * `pgrep -f <name>` — pid of the training process (empty if absent)
//! * `top -b -n 1 -p <pid>` — batch-mode snapshot with a `%CPU` column
//! * `dumpsys <name>` — meminfo dump containing a `TOTAL PSS:` line (KB)
//! * `cat /proc/<pid>/net/dev` — interface counters (wlan0 carries the
//!   training traffic)
//!
//! Outputs deliberately include the header/noise lines real tools print, so
//! PhoneMgr's post-processing (the "extract valid data" step of the paper)
//! is genuinely exercised.

use simdc_types::{Result, SimInstant, SimdcError};

use crate::device::PhoneDevice;
use crate::TRAIN_PROCESS;

/// Executes `cmd` against `phone` at virtual time `now`.
///
/// # Errors
///
/// Returns [`SimdcError::AdbCommand`] for unsupported commands, unknown
/// paths, missing processes, or malformed pipelines.
pub fn exec(phone: &mut PhoneDevice, cmd: &str, now: SimInstant) -> Result<String> {
    let mut segments = cmd.split('|').map(str::trim);
    let first = segments
        .next()
        .filter(|s| !s.is_empty())
        .ok_or_else(|| SimdcError::AdbCommand("empty command".into()))?;

    let mut output = run_primary(phone, first, now)?;
    for filter in segments {
        output = apply_filter(&output, filter)?;
    }
    Ok(output)
}

fn run_primary(phone: &mut PhoneDevice, cmd: &str, now: SimInstant) -> Result<String> {
    let tokens: Vec<&str> = cmd.split_whitespace().collect();
    match tokens.as_slice() {
        ["cat", path] => cat(phone, path, now),
        ["pgrep", "-f", name] => Ok(pgrep(phone, name, now)),
        ["top", "-b", "-n", "1", "-p", pid] => top(phone, pid, now),
        ["dumpsys", name] => dumpsys(phone, name, now),
        _ => Err(SimdcError::AdbCommand(format!(
            "unsupported command: {cmd}"
        ))),
    }
}

fn apply_filter(input: &str, filter: &str) -> Result<String> {
    let tokens: Vec<&str> = filter.split_whitespace().collect();
    match tokens.as_slice() {
        ["grep", pattern] => Ok(input
            .lines()
            .filter(|l| l.contains(pattern))
            .collect::<Vec<_>>()
            .join("\n")),
        _ => Err(SimdcError::AdbCommand(format!(
            "unsupported pipeline stage: {filter}"
        ))),
    }
}

fn cat(phone: &mut PhoneDevice, path: &str, now: SimInstant) -> Result<String> {
    match path {
        "/sys/class/power_supply/battery/current_now" => {
            // Negative sign: discharging, as most kernels report it.
            Ok(format!("-{}", phone.current_ua_at(now).round() as i64))
        }
        "/sys/class/power_supply/battery/voltage_now" => {
            Ok(format!("{}", phone.voltage_uv_at(now).round() as i64))
        }
        _ if path.starts_with("/proc/") && path.ends_with("/net/dev") => {
            let pid_str = &path["/proc/".len()..path.len() - "/net/dev".len()];
            let pid: u32 = pid_str
                .parse()
                .map_err(|_| SimdcError::AdbCommand(format!("cat: {path}: invalid pid")))?;
            match phone.train_pid_at(now) {
                Some(p) if p == pid => Ok(net_dev(phone, now)),
                _ => Err(SimdcError::AdbCommand(format!(
                    "cat: {path}: No such file or directory"
                ))),
            }
        }
        _ => Err(SimdcError::AdbCommand(format!(
            "cat: {path}: No such file or directory"
        ))),
    }
}

fn pgrep(phone: &PhoneDevice, name: &str, now: SimInstant) -> String {
    if name == TRAIN_PROCESS {
        match phone.train_pid_at(now) {
            Some(pid) => pid.to_string(),
            None => String::new(),
        }
    } else {
        String::new()
    }
}

fn top(phone: &mut PhoneDevice, pid_str: &str, now: SimInstant) -> Result<String> {
    let pid: u32 = pid_str
        .parse()
        .map_err(|_| SimdcError::AdbCommand(format!("top: bad pid '{pid_str}'")))?;
    let Some(actual) = phone.train_pid_at(now) else {
        return Err(SimdcError::AdbCommand(format!(
            "top: no process found for pid {pid}"
        )));
    };
    if actual != pid {
        return Err(SimdcError::AdbCommand(format!(
            "top: no process found for pid {pid}"
        )));
    }
    let cpu = phone.cpu_pct_at(now);
    let mem_kb = phone.mem_kb_at(now);
    let mem_pct = mem_kb / (6.0 * 1024.0 * 1024.0) * 100.0;
    Ok(format!(
        "Tasks: 1 total, 1 running, 0 sleeping, 0 stopped, 0 zombie\n\
         Mem:   5873664K total,  3985312K used,  1888352K free,   184320K buffers\n\
         400%cpu  57%user   0%nice  41%sys 299%idle   0%iow   3%irq   0%sirq\n\
         \x20 PID USER         PR  NI VIRT  RES  SHR S [%CPU] %MEM     TIME+ ARGS\n\
         {pid:5} u0_a217      10 -10 1.9G {res}M {shr}M S  {cpu:.1} {mem_pct:.1}   0:42.17 {proc}",
        res = (mem_kb / 1024.0).round() as u64,
        shr = (mem_kb / 2048.0).round() as u64,
        cpu = cpu,
        mem_pct = mem_pct,
        proc = TRAIN_PROCESS,
    ))
}

fn dumpsys(phone: &mut PhoneDevice, name: &str, now: SimInstant) -> Result<String> {
    if name != TRAIN_PROCESS {
        return Err(SimdcError::AdbCommand(format!(
            "dumpsys: can't find service: {name}"
        )));
    }
    let Some(pid) = phone.train_pid_at(now) else {
        return Err(SimdcError::AdbCommand(format!(
            "dumpsys: no process found for {name}"
        )));
    };
    let pss_kb = phone.mem_kb_at(now).round() as u64;
    let private = (pss_kb as f64 * 0.8).round() as u64;
    Ok(format!(
        "Applications Memory Usage (in Kilobytes):\n\
         Uptime: 86042113 Realtime: 214673122\n\n\
         ** MEMINFO in pid {pid} [{name}] **\n\
         \x20                  Pss  Private  Private  SwapPss      Rss     Heap\n\
         \x20                Total    Dirty    Clean    Dirty    Total     Size\n\
         \x20 Native Heap  {nh:8} {nhd:8}        0        0 {nhr:8}    20480\n\
         \x20       TOTAL PSS: {pss_kb} kB   TOTAL Private: {private} kB   TOTAL RSS: {rss} kB\n",
        nh = pss_kb / 3,
        nhd = pss_kb / 4,
        nhr = pss_kb / 2,
        rss = pss_kb * 2,
    ))
}

fn net_dev(phone: &PhoneDevice, now: SimInstant) -> String {
    let (rx, tx) = phone.net_rx_tx_at(now);
    format!(
        "Inter-|   Receive                                                |  Transmit\n\
         \x20face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs drop fifo colls carrier compressed\n\
         \x20   lo:    4820      52    0    0    0     0          0         0     4820      52    0    0    0     0       0          0\n\
         \x20rmnet0:       0       0    0    0    0     0          0         0        0       0    0    0    0     0       0          0\n\
         \x20wlan0: {rx:8} {rxp:7}    0    0    0     0          0         0 {tx:8} {txp:7}    0    0    0     0       0          0",
        rx = rx,
        rxp = rx / 900 + 1,
        tx = tx,
        txp = tx / 900 + 1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Provenance;
    use crate::stage::RunPlan;
    use simdc_types::{DeviceGrade, PhoneId, SimDuration, TaskId};

    fn busy_phone() -> PhoneDevice {
        let mut p = PhoneDevice::new(
            PhoneId(2),
            "simphone-a2",
            DeviceGrade::Low,
            Provenance::Msp,
            11,
        );
        let plan = RunPlan::new(
            TaskId(9),
            PhoneId(2),
            SimInstant::EPOCH,
            &[SimDuration::from_secs(22)],
            &[],
        )
        .unwrap();
        p.assign_run(plan).unwrap();
        p
    }

    fn training_time() -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs(35)
    }

    #[test]
    fn current_is_negative_integer_microamps() {
        let mut p = busy_phone();
        let out = p
            .adb_shell(
                "cat /sys/class/power_supply/battery/current_now",
                training_time(),
            )
            .unwrap();
        let value: i64 = out.parse().unwrap();
        assert!(value < 0, "discharging current is negative: {out}");
        // Low-grade training ≈ 110 mA = 110 000 µA.
        assert!((-value - 110_000).abs() < 10_000, "{out}");
    }

    #[test]
    fn voltage_is_microvolts() {
        let mut p = busy_phone();
        let out = p
            .adb_shell(
                "cat /sys/class/power_supply/battery/voltage_now",
                training_time(),
            )
            .unwrap();
        let uv: i64 = out.parse().unwrap();
        assert!((3_700_000..3_900_000).contains(&uv), "{uv}");
    }

    #[test]
    fn pgrep_finds_training_process_only_when_alive() {
        let mut p = busy_phone();
        let pid = p
            .adb_shell("pgrep -f com.simdc.train", training_time())
            .unwrap();
        assert!(pid.parse::<u32>().is_ok(), "pid output: {pid}");
        // Stage 1 (t=5s): APK not yet launched.
        let early = p
            .adb_shell(
                "pgrep -f com.simdc.train",
                SimInstant::EPOCH + SimDuration::from_secs(5),
            )
            .unwrap();
        assert!(early.is_empty());
        // Unknown process name.
        let other = p
            .adb_shell("pgrep -f com.example.other", training_time())
            .unwrap();
        assert!(other.is_empty());
    }

    #[test]
    fn top_contains_cpu_column_with_junk_lines() {
        let mut p = busy_phone();
        let pid = p
            .adb_shell("pgrep -f com.simdc.train", training_time())
            .unwrap();
        let out = p
            .adb_shell(&format!("top -b -n 1 -p {pid}"), training_time())
            .unwrap();
        assert!(out.lines().count() >= 5, "top prints headers: {out}");
        assert!(out.contains("%CPU"));
        assert!(out.contains(TRAIN_PROCESS));
    }

    #[test]
    fn top_rejects_wrong_pid() {
        let mut p = busy_phone();
        assert!(p.adb_shell("top -b -n 1 -p 1", training_time()).is_err());
    }

    #[test]
    fn dumpsys_grep_pss_isolates_the_total_line() {
        let mut p = busy_phone();
        let out = p
            .adb_shell("dumpsys com.simdc.train | grep PSS", training_time())
            .unwrap();
        assert_eq!(out.lines().count(), 1, "grep leaves one line: {out}");
        assert!(out.contains("TOTAL PSS:"));
    }

    #[test]
    fn net_dev_grep_wlan() {
        let mut p = busy_phone();
        let pid = p
            .adb_shell("pgrep -f com.simdc.train", training_time())
            .unwrap();
        let out = p
            .adb_shell(
                &format!("cat /proc/{pid}/net/dev | grep wlan"),
                training_time(),
            )
            .unwrap();
        assert_eq!(out.lines().count(), 1);
        assert!(out.trim_start().starts_with("wlan0:"));
    }

    #[test]
    fn unknown_commands_fail() {
        let mut p = busy_phone();
        assert!(p.adb_shell("reboot", training_time()).is_err());
        assert!(p.adb_shell("cat /etc/passwd", training_time()).is_err());
        assert!(p.adb_shell("", training_time()).is_err());
        assert!(p
            .adb_shell("dumpsys com.simdc.train | sort", training_time())
            .is_err());
    }

    #[test]
    fn proc_net_dev_requires_live_matching_pid() {
        let mut p = busy_phone();
        assert!(p
            .adb_shell("cat /proc/99999/net/dev", training_time())
            .is_err());
        assert!(p
            .adb_shell("cat /proc/abc/net/dev", training_time())
            .is_err());
    }
}
