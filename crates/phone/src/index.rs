//! Incremental grade-indexed availability accounting for [`crate::PhoneMgr`].
//!
//! The manager's task-plan hot paths — `select`, `available`,
//! `effective_profile` — used to rescan the whole `Vec<PhoneDevice>` on
//! every call, which is O(fleet) per task per grade and the wall between
//! paper-scale fleets (30 phones) and million-device scenarios. This module
//! keeps the answers *incrementally*:
//!
//! * per-`(grade, provenance)` ordered **free sets** (`BTreeSet<PhoneId>`),
//!   so selection pops the cheapest ids in the exact order the old
//!   sort-based scan produced (local before MSP, ids ascending);
//! * per-`(grade, provenance)` **registration totals**, making `count`
//!   O(1);
//! * per-grade **running sums** of the profiled training/startup
//!   durations, making `effective_profile` O(1);
//! * a global min-heap of **availability transitions** — run completions
//!   and scheduled crash onsets — drained lazily as query time advances,
//!   so a phone whose run ends at `t` re-enters its free set the first
//!   time anyone asks about a `now >= t`.
//!
//! Phone availability is a function of virtual time (`is_busy(now)` /
//! `is_crashed(now)`), so the index carries a high-water mark
//! (`indexed_to`) and assumes availability queries arrive with
//! non-decreasing `now` — which the event-driven platform guarantees.
//! `select` additionally re-verifies every candidate against the device
//! state, so even a misuse cannot hand out a busy phone. In debug builds
//! the manager asserts after every sync that the index agrees with a full
//! brute-force rescan.
//!
//! Mutations that bypass the manager's APIs (raw [`crate::PhoneMgr::phone_mut`]
//! access) are tracked as *dirty* ids and re-indexed on the next query, so
//! existing callers stay correct without threading hooks everywhere.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use simdc_types::{DeviceGrade, PhoneId, SimInstant};

use crate::device::{PhoneDevice, Provenance};

/// Provenance slot inside the per-grade bucket arrays.
pub(crate) const fn prov_slot(prov: Provenance) -> usize {
    match prov {
        Provenance::Local => 0,
        Provenance::Msp => 1,
    }
}

/// Running per-grade profile sums backing O(1) `effective_profile`.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct GradeSums {
    /// Registered phones of the grade.
    pub n: u32,
    /// Sum of profiled training durations, seconds.
    pub train_secs: f64,
    /// Sum of profiled framework-startup durations, seconds.
    pub startup_secs: f64,
}

/// The incremental availability index. See the module docs.
#[derive(Debug, Default)]
pub(crate) struct FleetIndex {
    /// Free (idle, healthy) phones per `[grade][provenance]`.
    free: [[BTreeSet<PhoneId>; 2]; DeviceGrade::COUNT],
    /// Registered phones per `[grade][provenance]` (busy or not).
    totals: [[usize; 2]; DeviceGrade::COUNT],
    /// Per-grade profile sums.
    sums: [GradeSums; DeviceGrade::COUNT],
    /// Each phone's last-indexed profile contribution
    /// `(train_secs, startup_secs)` — subtracted before re-adding on a
    /// profile change so the sums never double-count.
    cached_profile: BTreeMap<PhoneId, (f64, f64)>,
    /// Future instants at which a phone's availability may flip (run end,
    /// scheduled crash onset). Entries may be stale — re-indexing is
    /// idempotent, so stale pops are harmless.
    transitions: BinaryHeap<Reverse<(SimInstant, PhoneId)>>,
    /// Phones mutated through raw `phone_mut` access since the last sync.
    dirty: Vec<PhoneId>,
    /// High-water mark of drained transitions: availability answers are
    /// exact for queries at `now >= indexed_to`.
    indexed_to: SimInstant,
}

impl FleetIndex {
    /// Marks a phone as needing re-indexing at the next sync (used by the
    /// manager's raw mutable accessor, which cannot know what changed).
    pub fn mark_dirty(&mut self, id: PhoneId) {
        self.dirty.push(id);
    }

    /// Registered phones of `grade`, optionally narrowed to a provenance.
    pub fn total(&self, grade: DeviceGrade, provenance: Option<Provenance>) -> usize {
        let bucket = &self.totals[grade.index()];
        match provenance {
            Some(p) => bucket[prov_slot(p)],
            None => bucket[0] + bucket[1],
        }
    }

    /// Free phones of `grade` as of the last sync.
    pub fn free_count(&self, grade: DeviceGrade) -> usize {
        let bucket = &self.free[grade.index()];
        bucket[0].len() + bucket[1].len()
    }

    /// Free ids of `grade` in selection order: local phones first, ids
    /// ascending within each provenance — byte-identical to the order the
    /// old full-fleet sort produced.
    pub fn iter_free(&self, grade: DeviceGrade) -> impl Iterator<Item = PhoneId> + '_ {
        let bucket = &self.free[grade.index()];
        bucket[0].iter().copied().chain(bucket[1].iter().copied())
    }

    /// The per-grade profile sums (synced).
    pub fn sums(&self, grade: DeviceGrade) -> GradeSums {
        self.sums[grade.index()]
    }

    /// Accounts for a newly registered phone and indexes it.
    pub fn note_registered(&mut self, phone: &PhoneDevice) {
        self.totals[phone.grade().index()][prov_slot(phone.provenance())] += 1;
        let at = self.indexed_to;
        self.reindex(phone, at);
    }

    /// Removes a retired phone from every structure (stale heap entries
    /// are left behind; expiry skips unknown ids).
    pub fn note_retired(&mut self, phone: &PhoneDevice) {
        let g = phone.grade().index();
        self.totals[g][prov_slot(phone.provenance())] -= 1;
        self.free[g][prov_slot(phone.provenance())].remove(&phone.id());
        if let Some((train, startup)) = self.cached_profile.remove(&phone.id()) {
            let sums = &mut self.sums[g];
            sums.n -= 1;
            sums.train_secs -= train;
            sums.startup_secs -= startup;
        }
    }

    /// Re-indexes one phone at the index's current high-water instant —
    /// the hook manager APIs call right after they mutate a device.
    pub fn touch(&mut self, phone: &PhoneDevice) {
        let at = self.indexed_to;
        self.reindex(phone, at);
    }

    /// Re-derives one phone's index state from the device itself, as of
    /// `at`: profile contribution, free-set membership, and any future
    /// transition instants. Idempotent.
    pub fn reindex(&mut self, phone: &PhoneDevice, at: SimInstant) {
        let id = phone.id();
        let g = phone.grade().index();

        // Profile sums: swap the cached contribution for the current one.
        let contribution = (
            phone.profile().train_duration.as_secs_f64(),
            phone.profile().framework_startup.as_secs_f64(),
        );
        let sums = &mut self.sums[g];
        match self.cached_profile.insert(id, contribution) {
            Some((old_train, old_startup)) => {
                if (old_train, old_startup) != contribution {
                    sums.train_secs += contribution.0 - old_train;
                    sums.startup_secs += contribution.1 - old_startup;
                }
            }
            None => {
                sums.n += 1;
                sums.train_secs += contribution.0;
                sums.startup_secs += contribution.1;
            }
        }

        // Free-set membership as of `at`.
        let set = &mut self.free[g][prov_slot(phone.provenance())];
        if phone.is_busy(at) || phone.is_crashed(at) {
            set.remove(&id);
        } else {
            set.insert(id);
        }

        // Future flips: the run's end frees the phone; a scheduled crash
        // onset removes it. Reboots have no instant of their own — they
        // arrive as explicit manager calls and re-index immediately.
        if let Some(run) = phone.run() {
            if run.end() > at {
                self.transitions.push(Reverse((run.end(), id)));
            }
        }
        if let Some(crash_at) = phone.crashed_at() {
            if crash_at > at {
                self.transitions.push(Reverse((crash_at, id)));
            }
        }
    }

    /// Brings the index up to `now`: drains due transitions and re-indexes
    /// dirty phones. O(k log F) in the number of due transitions and dirty
    /// ids — independent of fleet size on the steady-state path.
    pub fn sync(
        &mut self,
        now: SimInstant,
        phones: &[PhoneDevice],
        by_id: &BTreeMap<PhoneId, usize>,
    ) {
        let at = self.indexed_to.max(now);
        self.indexed_to = at;
        while let Some(&Reverse((t, id))) = self.transitions.peek() {
            if t > at {
                break;
            }
            self.transitions.pop();
            if let Some(&slot) = by_id.get(&id) {
                // Split the borrow: reindex needs &mut self.
                let phone = &phones[slot];
                self.reindex(phone, at);
            }
        }
        // Repeated phone_mut calls on one phone stack duplicate dirty
        // entries; re-indexing is idempotent but each pass pushes fresh
        // transition-heap entries, so dedup before flushing.
        self.dirty.sort_unstable();
        self.dirty.dedup();
        while let Some(id) = self.dirty.pop() {
            if let Some(&slot) = by_id.get(&id) {
                let phone = &phones[slot];
                self.reindex(phone, at);
            }
        }
    }

    /// Full-rescan parity check (debug builds): the free sets, totals and
    /// profile sums must agree with a brute-force walk of the fleet at the
    /// index's high-water instant.
    #[cfg(debug_assertions)]
    pub fn assert_parity(&self, phones: &[PhoneDevice]) {
        let at = self.indexed_to;
        let mut free: [[BTreeSet<PhoneId>; 2]; DeviceGrade::COUNT] = Default::default();
        let mut totals = [[0usize; 2]; DeviceGrade::COUNT];
        let mut ns = [0u32; DeviceGrade::COUNT];
        for p in phones {
            let g = p.grade().index();
            let s = prov_slot(p.provenance());
            totals[g][s] += 1;
            ns[g] += 1;
            if !p.is_busy(at) && !p.is_crashed(at) {
                free[g][s].insert(p.id());
            }
        }
        assert_eq!(
            self.free, free,
            "fleet index free sets diverged from a full rescan at {at}"
        );
        assert_eq!(self.totals, totals, "fleet index totals diverged");
        for g in DeviceGrade::ALL {
            let sums = self.sums[g.index()];
            assert_eq!(sums.n, ns[g.index()], "profile-sum count diverged for {g}");
            let (mut train, mut startup) = (0.0f64, 0.0f64);
            for p in phones.iter().filter(|p| p.grade() == g) {
                train += p.profile().train_duration.as_secs_f64();
                startup += p.profile().framework_startup.as_secs_f64();
            }
            assert!(
                (sums.train_secs - train).abs() <= 1e-6 * train.abs().max(1.0),
                "profile train-duration sum drifted for {g}: {} vs rescan {train}",
                sums.train_secs
            );
            assert!(
                (sums.startup_secs - startup).abs() <= 1e-6 * startup.abs().max(1.0),
                "profile startup sum drifted for {g}: {} vs rescan {startup}",
                sums.startup_secs
            );
        }
    }
}
