//! Grade-calibrated phone behaviour profiles.
//!
//! The numeric defaults are calibrated against Table I of the paper: stage
//! power (mAh) over the measured stage durations implies the mean discharge
//! current of each stage; the training-stage durations give the per-round
//! train time `β`; Fig 5 gives the CPU/memory envelopes.

use serde::{Deserialize, Serialize};
use simdc_types::{DeviceGrade, Result, SimDuration, SimdcError};

use crate::stage::Stage;

/// Static behaviour model of one phone model/grade.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhoneProfile {
    /// Device grade this profile describes.
    pub grade: DeviceGrade,
    /// Battery voltage in mV (phones report µV over sysfs; see
    /// [`crate::adb`]).
    pub voltage_mv: f64,
    /// Mean discharge current per Table-I stage, in mA, indexed by
    /// [`Stage::table_index`] (waiting gaps use [`PhoneProfile::waiting_current_ma`]).
    pub stage_current_ma: [f64; 5],
    /// Mean discharge current while waiting for aggregation, in mA.
    pub waiting_current_ma: f64,
    /// Per-round training duration `β` (Table I stage 3: 0.27 min High,
    /// 0.36 min Low).
    pub train_duration: SimDuration,
    /// Compute-framework startup `λ` charged once per task before the first
    /// round (§IV-B's allocation model).
    pub framework_startup: SimDuration,
    /// Bytes exchanged with the cloud per training round, in KB
    /// (Table I: ~33.1 KB).
    pub comm_kb_per_round: f64,
    /// Mean CPU % during training.
    pub cpu_train_base_pct: f64,
    /// CPU fluctuation amplitude during training (slow sine + noise).
    pub cpu_train_amp_pct: f64,
    /// CPU % outside training stages.
    pub cpu_idle_pct: f64,
    /// Process memory right after APK launch, MB.
    pub mem_launch_mb: f64,
    /// Plateau process memory during training, MB.
    pub mem_train_peak_mb: f64,
    /// Time for memory to ramp from launch level to the plateau.
    pub mem_ramp: SimDuration,
    /// Relative measurement noise applied to instantaneous readings.
    pub noise_frac: f64,
}

impl PhoneProfile {
    /// High-grade profile (≥8 GB memory phones in the paper).
    ///
    /// Stage currents derive from Table I row "High": `mAh · 60 / minutes`
    /// → `[57.6, 122.4, 40.0, 88.8, 105.6]` mA across the five stages.
    #[must_use]
    pub fn high() -> Self {
        PhoneProfile {
            grade: DeviceGrade::High,
            voltage_mv: 3_900.0,
            stage_current_ma: [57.6, 122.4, 40.0, 88.8, 105.6],
            waiting_current_ma: 35.0,
            train_duration: SimDuration::from_secs_f64(0.27 * 60.0), // 16.2 s
            framework_startup: SimDuration::from_secs(30),
            comm_kb_per_round: 33.1,
            cpu_train_base_pct: 8.5,
            cpu_train_amp_pct: 3.5,
            cpu_idle_pct: 1.0,
            mem_launch_mb: 14.0,
            mem_train_peak_mb: 47.0,
            mem_ramp: SimDuration::from_secs(30),
            noise_frac: 0.04,
        }
    }

    /// Low-grade profile (<8 GB memory phones).
    ///
    /// Table I row "Low" → stage currents
    /// `[410.4, 432.0, 110.0, 396.0, 436.8]` mA.
    #[must_use]
    pub fn low() -> Self {
        PhoneProfile {
            grade: DeviceGrade::Low,
            voltage_mv: 3_800.0,
            stage_current_ma: [410.4, 432.0, 110.0, 396.0, 436.8],
            waiting_current_ma: 90.0,
            train_duration: SimDuration::from_secs_f64(0.36 * 60.0), // 21.6 s
            framework_startup: SimDuration::from_secs(45),
            comm_kb_per_round: 33.1,
            cpu_train_base_pct: 10.0,
            cpu_train_amp_pct: 3.0,
            cpu_idle_pct: 1.5,
            mem_launch_mb: 12.0,
            mem_train_peak_mb: 42.0,
            mem_ramp: SimDuration::from_secs(40),
            noise_frac: 0.05,
        }
    }

    /// The profile for a grade.
    #[must_use]
    pub fn for_grade(grade: DeviceGrade) -> Self {
        match grade {
            DeviceGrade::High => PhoneProfile::high(),
            DeviceGrade::Low => PhoneProfile::low(),
        }
    }

    /// Mean current of a stage in mA.
    #[must_use]
    pub fn stage_current(&self, stage: Stage) -> f64 {
        match stage.table_index() {
            Some(i) => self.stage_current_ma[i],
            None => self.waiting_current_ma,
        }
    }

    /// `β` as used by the allocation optimizer.
    #[must_use]
    pub fn beta(&self) -> SimDuration {
        self.train_duration
    }

    /// `λ` as used by the allocation optimizer.
    #[must_use]
    pub fn lambda(&self) -> SimDuration {
        self.framework_startup
    }

    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` for non-positive durations/currents or noise
    /// outside `[0, 0.5]`.
    pub fn validate(&self) -> Result<()> {
        use SimdcError::InvalidConfig;
        if self.train_duration.is_zero() {
            return Err(InvalidConfig("train_duration must be positive".into()));
        }
        if self
            .stage_current_ma
            .iter()
            .any(|&c| c <= 0.0 || !c.is_finite())
        {
            return Err(InvalidConfig("stage currents must be positive".into()));
        }
        if !(0.0..=0.5).contains(&self.noise_frac) {
            return Err(InvalidConfig(format!(
                "noise_frac must be in [0, 0.5], got {}",
                self.noise_frac
            )));
        }
        if self.mem_train_peak_mb < self.mem_launch_mb {
            return Err(InvalidConfig(
                "mem_train_peak_mb must be >= mem_launch_mb".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(PhoneProfile::high().validate().is_ok());
        assert!(PhoneProfile::low().validate().is_ok());
    }

    #[test]
    fn table1_power_reconstruction() {
        // Integrating stage current over Table I durations must reproduce
        // the paper's mAh values.
        let high = PhoneProfile::high();
        let durations_min = [0.25, 0.25, 0.27, 0.25, 0.25];
        let expected_mah = [0.24, 0.51, 0.18, 0.37, 0.44];
        for i in 0..5 {
            let mah = high.stage_current_ma[i] * durations_min[i] / 60.0;
            assert!(
                (mah - expected_mah[i]).abs() < 1e-9,
                "stage {i}: {mah} vs {}",
                expected_mah[i]
            );
        }
        let low = PhoneProfile::low();
        let durations_min = [0.25, 0.25, 0.36, 0.25, 0.25];
        let expected_mah = [1.71, 1.80, 0.66, 1.65, 1.82];
        for i in 0..5 {
            let mah = low.stage_current_ma[i] * durations_min[i] / 60.0;
            assert!(
                (mah - expected_mah[i]).abs() < 1e-9,
                "stage {i}: {mah} vs {}",
                expected_mah[i]
            );
        }
    }

    #[test]
    fn high_grade_trains_faster_and_cheaper() {
        let high = PhoneProfile::high();
        let low = PhoneProfile::low();
        assert!(high.train_duration < low.train_duration);
        assert!(high.stage_current_ma[2] < low.stage_current_ma[2]);
        assert!(high.framework_startup < low.framework_startup);
    }

    #[test]
    fn for_grade_round_trips() {
        assert_eq!(
            PhoneProfile::for_grade(DeviceGrade::High).grade,
            DeviceGrade::High
        );
        assert_eq!(
            PhoneProfile::for_grade(DeviceGrade::Low).grade,
            DeviceGrade::Low
        );
    }

    #[test]
    fn invalid_profiles_rejected() {
        let mut p = PhoneProfile::high();
        p.noise_frac = 0.9;
        assert!(p.validate().is_err());
        let mut p = PhoneProfile::high();
        p.stage_current_ma[0] = 0.0;
        assert!(p.validate().is_err());
        let mut p = PhoneProfile::high();
        p.mem_train_peak_mb = 1.0;
        assert!(p.validate().is_err());
        let mut p = PhoneProfile::high();
        p.train_duration = SimDuration::ZERO;
        assert!(p.validate().is_err());
    }
}
