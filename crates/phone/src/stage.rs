//! The five-stage execution lifecycle of a phone task run.

use serde::{Deserialize, Serialize};
use simdc_types::{PhoneId, Result, RoundId, SimDuration, SimInstant, SimdcError, TaskId};

/// Lifecycle stage of a phone executing a task (Table I), plus the
/// unmeasured waiting gap between training rounds (Fig 5's dashed
/// segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Stage 1 — background tasks cleared, APK not yet running.
    NoApk,
    /// Stage 2 — APK launched, training not started.
    ApkLaunch,
    /// Stage 3 — training.
    Training,
    /// Waiting for global aggregation between rounds (not part of Table I;
    /// excluded from stage reports).
    Waiting,
    /// Stage 4 — training done, APK still active.
    PostTraining,
    /// Stage 5 — APK exited, background cleared again.
    ApkClosed,
}

impl Stage {
    /// Index into Table I's five measured stages, or `None` for
    /// [`Stage::Waiting`].
    #[must_use]
    pub const fn table_index(self) -> Option<usize> {
        match self {
            Stage::NoApk => Some(0),
            Stage::ApkLaunch => Some(1),
            Stage::Training => Some(2),
            Stage::Waiting => None,
            Stage::PostTraining => Some(3),
            Stage::ApkClosed => Some(4),
        }
    }

    /// Table I row label.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Stage::NoApk => "no APK initiated",
            Stage::ApkLaunch => "APK launch",
            Stage::Training => "Training",
            Stage::Waiting => "waiting for aggregation",
            Stage::PostTraining => "Post-training",
            Stage::ApkClosed => "Closure of APK",
        }
    }

    /// Whether the training APK process is alive in this stage.
    #[must_use]
    pub const fn apk_running(self) -> bool {
        matches!(
            self,
            Stage::ApkLaunch | Stage::Training | Stage::Waiting | Stage::PostTraining
        )
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One contiguous window of a stage, possibly tagged with the round it
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageWindow {
    /// The stage.
    pub stage: Stage,
    /// Window start (inclusive).
    pub start: SimInstant,
    /// Window length.
    pub duration: SimDuration,
    /// Training round this window belongs to, for `Training`/`Waiting`.
    pub round: Option<RoundId>,
}

impl StageWindow {
    /// Window end (exclusive).
    #[must_use]
    pub fn end(&self) -> SimInstant {
        self.start + self.duration
    }

    /// Whether `t` falls inside the window.
    #[must_use]
    pub fn contains(&self, t: SimInstant) -> bool {
        t >= self.start && t < self.end()
    }
}

/// The full timed plan of one task run on one phone.
///
/// Layout: `NoApk → ApkLaunch → (Training [→ Waiting])ⁿ → PostTraining →
/// ApkClosed`. The measurement windows for stages 1/2/4/5 are fixed at
/// 0.25 min, matching Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunPlan {
    /// Task being executed.
    pub task: TaskId,
    /// Executing phone.
    pub phone: PhoneId,
    windows: Vec<StageWindow>,
}

/// Fixed measurement window for the non-training stages (0.25 min).
pub const MEASUREMENT_WINDOW: SimDuration = SimDuration::from_millis(15_000);

impl RunPlan {
    /// Builds a plan starting at `start` with one training window per
    /// round and the given waiting gap after each non-final round.
    ///
    /// `round_durations[r]` is the round-`r` training time;
    /// `waiting_gaps[r]` (length = rounds − 1) the aggregation wait that
    /// follows it.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` if `round_durations` is empty, any duration
    /// is zero, or the gap count is not `rounds − 1`.
    pub fn new(
        task: TaskId,
        phone: PhoneId,
        start: SimInstant,
        round_durations: &[SimDuration],
        waiting_gaps: &[SimDuration],
    ) -> Result<Self> {
        use SimdcError::InvalidConfig;
        if round_durations.is_empty() {
            return Err(InvalidConfig("a run needs at least one round".into()));
        }
        if round_durations.iter().any(|d| d.is_zero()) {
            return Err(InvalidConfig("round durations must be positive".into()));
        }
        if waiting_gaps.len() + 1 != round_durations.len() {
            return Err(InvalidConfig(format!(
                "expected {} waiting gaps for {} rounds, got {}",
                round_durations.len() - 1,
                round_durations.len(),
                waiting_gaps.len()
            )));
        }

        let mut windows = Vec::with_capacity(round_durations.len() * 2 + 4);
        let mut t = start;
        let push = |windows: &mut Vec<StageWindow>,
                    t: &mut SimInstant,
                    stage: Stage,
                    d: SimDuration,
                    round: Option<RoundId>| {
            windows.push(StageWindow {
                stage,
                start: *t,
                duration: d,
                round,
            });
            *t += d;
        };

        push(&mut windows, &mut t, Stage::NoApk, MEASUREMENT_WINDOW, None);
        push(
            &mut windows,
            &mut t,
            Stage::ApkLaunch,
            MEASUREMENT_WINDOW,
            None,
        );
        for (r, &d) in round_durations.iter().enumerate() {
            let round = RoundId(r as u32);
            push(&mut windows, &mut t, Stage::Training, d, Some(round));
            if r < waiting_gaps.len() && !waiting_gaps[r].is_zero() {
                push(
                    &mut windows,
                    &mut t,
                    Stage::Waiting,
                    waiting_gaps[r],
                    Some(round),
                );
            }
        }
        push(
            &mut windows,
            &mut t,
            Stage::PostTraining,
            MEASUREMENT_WINDOW,
            None,
        );
        push(
            &mut windows,
            &mut t,
            Stage::ApkClosed,
            MEASUREMENT_WINDOW,
            None,
        );

        Ok(RunPlan {
            task,
            phone,
            windows,
        })
    }

    /// The stage windows in time order.
    #[must_use]
    pub fn windows(&self) -> &[StageWindow] {
        &self.windows
    }

    /// Plan start.
    #[must_use]
    pub fn start(&self) -> SimInstant {
        self.windows[0].start
    }

    /// Plan end (exclusive).
    #[must_use]
    pub fn end(&self) -> SimInstant {
        self.windows.last().expect("plans are non-empty").end()
    }

    /// The stage active at `t`, if `t` is inside the plan.
    #[must_use]
    pub fn stage_at(&self, t: SimInstant) -> Option<Stage> {
        self.window_at(t).map(|w| w.stage)
    }

    /// The window active at `t`.
    #[must_use]
    pub fn window_at(&self, t: SimInstant) -> Option<&StageWindow> {
        self.windows.iter().find(|w| w.contains(t))
    }

    /// Number of training rounds.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.windows
            .iter()
            .filter(|w| w.stage == Stage::Training)
            .count()
    }

    /// Total time spent in `stage`.
    #[must_use]
    pub fn stage_total(&self, stage: Stage) -> SimDuration {
        self.windows
            .iter()
            .filter(|w| w.stage == stage)
            .map(|w| w.duration)
            .sum()
    }

    /// Elapsed active-training time up to `t` (across completed and
    /// current training windows). Drives the memory ramp model.
    #[must_use]
    pub fn training_elapsed_at(&self, t: SimInstant) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for w in &self.windows {
            if w.stage != Stage::Training {
                continue;
            }
            if t >= w.end() {
                total += w.duration;
            } else if w.contains(t) {
                total += t.duration_since(w.start);
            }
        }
        total
    }

    /// Completed training rounds strictly before `t`, and the progress
    /// fraction of the currently running round (0 if none).
    #[must_use]
    pub fn round_progress_at(&self, t: SimInstant) -> (u32, f64) {
        let mut completed = 0u32;
        let mut progress = 0.0;
        for w in &self.windows {
            if w.stage != Stage::Training {
                continue;
            }
            if t >= w.end() {
                completed += 1;
            } else if w.contains(t) {
                progress = t.duration_since(w.start).as_secs_f64() / w.duration.as_secs_f64();
            }
        }
        (completed, progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> RunPlan {
        RunPlan::new(
            TaskId(1),
            PhoneId(0),
            SimInstant::EPOCH,
            &[
                SimDuration::from_secs(16),
                SimDuration::from_secs(16),
                SimDuration::from_secs(16),
            ],
            &[SimDuration::from_secs(30), SimDuration::from_secs(30)],
        )
        .unwrap()
    }

    #[test]
    fn layout_matches_lifecycle() {
        let p = plan();
        let stages: Vec<Stage> = p.windows().iter().map(|w| w.stage).collect();
        assert_eq!(
            stages,
            vec![
                Stage::NoApk,
                Stage::ApkLaunch,
                Stage::Training,
                Stage::Waiting,
                Stage::Training,
                Stage::Waiting,
                Stage::Training,
                Stage::PostTraining,
                Stage::ApkClosed,
            ]
        );
        assert_eq!(p.rounds(), 3);
    }

    #[test]
    fn stage_at_walks_the_timeline() {
        let p = plan();
        let t = |secs: u64| SimInstant::EPOCH + SimDuration::from_secs(secs);
        assert_eq!(p.stage_at(t(0)), Some(Stage::NoApk));
        assert_eq!(p.stage_at(t(15)), Some(Stage::ApkLaunch));
        assert_eq!(p.stage_at(t(31)), Some(Stage::Training));
        assert_eq!(p.stage_at(t(50)), Some(Stage::Waiting));
        assert_eq!(p.stage_at(p.end()), None);
    }

    #[test]
    fn round_tagging() {
        let p = plan();
        let trainings: Vec<Option<RoundId>> = p
            .windows()
            .iter()
            .filter(|w| w.stage == Stage::Training)
            .map(|w| w.round)
            .collect();
        assert_eq!(
            trainings,
            vec![Some(RoundId(0)), Some(RoundId(1)), Some(RoundId(2))]
        );
    }

    #[test]
    fn training_elapsed_accumulates_across_gaps() {
        let p = plan();
        let mid_round2 = SimInstant::EPOCH + SimDuration::from_secs(30 + 16 + 30 + 8);
        let elapsed = p.training_elapsed_at(mid_round2);
        assert_eq!(elapsed, SimDuration::from_secs(24)); // 16 + 8
        assert_eq!(p.training_elapsed_at(p.end()), SimDuration::from_secs(48));
    }

    #[test]
    fn round_progress() {
        let p = plan();
        let mid_round2 = SimInstant::EPOCH + SimDuration::from_secs(30 + 16 + 30 + 8);
        let (completed, progress) = p.round_progress_at(mid_round2);
        assert_eq!(completed, 1);
        assert!((progress - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stage_totals() {
        let p = plan();
        assert_eq!(p.stage_total(Stage::Training), SimDuration::from_secs(48));
        assert_eq!(p.stage_total(Stage::Waiting), SimDuration::from_secs(60));
        assert_eq!(p.stage_total(Stage::NoApk), MEASUREMENT_WINDOW);
    }

    #[test]
    fn single_round_has_no_waiting() {
        let p = RunPlan::new(
            TaskId(1),
            PhoneId(0),
            SimInstant::EPOCH,
            &[SimDuration::from_secs(20)],
            &[],
        )
        .unwrap();
        assert!(p.windows().iter().all(|w| w.stage != Stage::Waiting));
    }

    #[test]
    fn invalid_plans_rejected() {
        assert!(RunPlan::new(TaskId(1), PhoneId(0), SimInstant::EPOCH, &[], &[]).is_err());
        assert!(RunPlan::new(
            TaskId(1),
            PhoneId(0),
            SimInstant::EPOCH,
            &[SimDuration::ZERO],
            &[]
        )
        .is_err());
        assert!(RunPlan::new(
            TaskId(1),
            PhoneId(0),
            SimInstant::EPOCH,
            &[SimDuration::from_secs(1)],
            &[SimDuration::from_secs(1)]
        )
        .is_err());
    }

    #[test]
    fn apk_running_flags() {
        assert!(!Stage::NoApk.apk_running());
        assert!(Stage::Training.apk_running());
        assert!(Stage::Waiting.apk_running());
        assert!(!Stage::ApkClosed.apk_running());
    }

    #[test]
    fn table_indices_cover_five_stages() {
        let indices: Vec<Option<usize>> = [
            Stage::NoApk,
            Stage::ApkLaunch,
            Stage::Training,
            Stage::PostTraining,
            Stage::ApkClosed,
        ]
        .iter()
        .map(|s| s.table_index())
        .collect();
        assert_eq!(indices, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        assert_eq!(Stage::Waiting.table_index(), None);
    }
}
