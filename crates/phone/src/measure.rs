//! Parsing of ADB output and aggregation into Table-I-style reports.
//!
//! Real tool output contains headers, idle lines and units; the paper notes
//! the collected information "typically contains other non-essential data,
//! requiring post-processing to extract valid data" (§IV-C). The parsers
//! here do exactly that extraction.

use serde::{Deserialize, Serialize};
use simdc_simrt::TimeSeries;
use simdc_types::{DeviceGrade, PhoneId, Result, SimDuration, SimInstant, SimdcError};

use crate::stage::Stage;
use crate::TRAIN_PROCESS;

/// One cleaned measurement sample from a benchmarking phone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfSample {
    /// Sampled phone.
    pub phone: PhoneId,
    /// Virtual sampling time.
    pub at: SimInstant,
    /// Stage the phone was in.
    pub stage: Stage,
    /// Discharge current, µA (positive).
    pub current_ua: f64,
    /// Battery voltage, mV.
    pub voltage_mv: f64,
    /// Training-process CPU usage, %.
    pub cpu_pct: f64,
    /// Training-process PSS, KB.
    pub mem_kb: f64,
    /// Cumulative network bytes (rx + tx) of the training process.
    pub net_bytes: u64,
}

/// Aggregated metrics of one Table-I stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// The stage.
    pub stage: Stage,
    /// Energy drawn during the stage, mAh.
    pub power_mah: f64,
    /// Stage duration, minutes.
    pub duration_min: f64,
    /// Bytes exchanged during the stage, KB.
    pub comm_kb: f64,
}

/// A full measurement report for one benchmarking phone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Measured phone.
    pub phone: PhoneId,
    /// Its grade.
    pub grade: DeviceGrade,
    /// Per-stage aggregates in Table-I order (first round only, like the
    /// paper's table).
    pub stages: Vec<StageMetrics>,
    /// CPU trace over the measured run (Fig 5 top panel).
    pub cpu_series: TimeSeries,
    /// Memory trace in MB (Fig 5 bottom panel).
    pub mem_series: TimeSeries,
    /// All raw samples.
    pub samples: Vec<PerfSample>,
}

impl PerfReport {
    /// The metrics of one stage, if measured.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> Option<&StageMetrics> {
        self.stages.iter().find(|s| s.stage == stage)
    }
}

/// Parses `cat …/current_now` output (µA, negative while discharging) into
/// positive µA.
///
/// # Errors
///
/// Returns [`SimdcError::AdbCommand`] if no integer is present.
pub fn parse_current_ua(raw: &str) -> Result<f64> {
    let value: i64 = raw
        .trim()
        .parse()
        .map_err(|_| SimdcError::AdbCommand(format!("unparsable current: '{raw}'")))?;
    Ok(value.unsigned_abs() as f64)
}

/// Parses `cat …/voltage_now` output (µV) into mV.
///
/// # Errors
///
/// Returns [`SimdcError::AdbCommand`] if no integer is present.
pub fn parse_voltage_mv(raw: &str) -> Result<f64> {
    let uv: i64 = raw
        .trim()
        .parse()
        .map_err(|_| SimdcError::AdbCommand(format!("unparsable voltage: '{raw}'")))?;
    Ok(uv as f64 / 1_000.0)
}

/// Extracts the `%CPU` value of the training process from `top -b -n 1 -p`
/// output.
///
/// # Errors
///
/// Returns [`SimdcError::AdbCommand`] when the process row is missing or
/// malformed.
pub fn parse_top_cpu(raw: &str) -> Result<f64> {
    let header = raw
        .lines()
        .find(|l| l.contains("%CPU"))
        .ok_or_else(|| SimdcError::AdbCommand("top output missing %CPU header".into()))?;
    // Column index of [%CPU] in the header.
    let cpu_col = header
        .split_whitespace()
        .position(|c| c.contains("%CPU"))
        .expect("header contains %CPU");
    let row = raw
        .lines()
        .find(|l| l.contains(TRAIN_PROCESS))
        .ok_or_else(|| SimdcError::AdbCommand("top output missing process row".into()))?;
    let field = row
        .split_whitespace()
        .nth(cpu_col)
        .ok_or_else(|| SimdcError::AdbCommand("top process row shorter than header".into()))?;
    field
        .parse()
        .map_err(|_| SimdcError::AdbCommand(format!("unparsable %CPU field '{field}'")))
}

/// Extracts the `TOTAL PSS: <n> kB` figure from (grep-filtered) `dumpsys`
/// output.
///
/// # Errors
///
/// Returns [`SimdcError::AdbCommand`] when no PSS total is present.
pub fn parse_pss_kb(raw: &str) -> Result<f64> {
    for line in raw.lines() {
        if let Some(rest) = line.trim().strip_prefix("TOTAL PSS:") {
            let number: String = rest
                .trim_start()
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            if !number.is_empty() {
                return number
                    .parse()
                    .map_err(|_| SimdcError::AdbCommand(format!("unparsable PSS '{number}'")));
            }
        }
        // Some dumps embed the total mid-line.
        if let Some(pos) = line.find("TOTAL PSS:") {
            let rest = &line[pos + "TOTAL PSS:".len()..];
            let number: String = rest
                .trim_start()
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            if !number.is_empty() {
                return number
                    .parse()
                    .map_err(|_| SimdcError::AdbCommand(format!("unparsable PSS '{number}'")));
            }
        }
    }
    Err(SimdcError::AdbCommand(
        "dumpsys output missing TOTAL PSS".into(),
    ))
}

/// Sums received + transmitted bytes of the wlan interface from
/// `/proc/<pid>/net/dev` output (the paper: "encompasses both received and
/// transmitted data that need to be extracted and summed").
///
/// # Errors
///
/// Returns [`SimdcError::AdbCommand`] when no wlan row is present.
pub fn parse_wlan_bytes(raw: &str) -> Result<u64> {
    let line = raw
        .lines()
        .find(|l| l.trim_start().starts_with("wlan"))
        .ok_or_else(|| SimdcError::AdbCommand("net/dev output missing wlan row".into()))?;
    let after_colon = line
        .split_once(':')
        .ok_or_else(|| SimdcError::AdbCommand("malformed net/dev row".into()))?
        .1;
    let fields: Vec<u64> = after_colon
        .split_whitespace()
        .map(|f| {
            f.parse()
                .map_err(|_| SimdcError::AdbCommand(format!("bad counter '{f}'")))
        })
        .collect::<Result<_>>()?;
    if fields.len() < 9 {
        return Err(SimdcError::AdbCommand(format!(
            "net/dev row has {} fields, expected >= 9",
            fields.len()
        )));
    }
    // Receive bytes is field 0, transmit bytes field 8.
    Ok(fields[0] + fields[8])
}

/// Builds Table-I stage aggregates from a time-ordered sample trace.
///
/// Power integrates `current × dt` at the sampled voltage-independent
/// current (mAh); communication is the net-byte delta across the stage.
/// Only the five Table-I stages appear, each reported once (first
/// occurrence, matching the paper's "initial training round" framing).
#[must_use]
pub fn aggregate_stages(samples: &[PerfSample], poll: SimDuration) -> Vec<StageMetrics> {
    let mut out: Vec<StageMetrics> = Vec::new();
    let order = [
        Stage::NoApk,
        Stage::ApkLaunch,
        Stage::Training,
        Stage::PostTraining,
        Stage::ApkClosed,
    ];
    for stage in order {
        // First contiguous window of this stage.
        let Some(first_idx) = samples.iter().position(|s| s.stage == stage) else {
            continue;
        };
        let window: Vec<&PerfSample> = samples[first_idx..]
            .iter()
            .take_while(|s| s.stage == stage)
            .collect();
        if window.is_empty() {
            continue;
        }
        let dt_h = poll.as_secs_f64() / 3_600.0;
        let power_mah: f64 = window.iter().map(|s| s.current_ua / 1_000.0 * dt_h).sum();
        let duration_min = window.len() as f64 * poll.as_secs_f64() / 60.0;
        let comm_bytes = window.last().expect("non-empty").net_bytes
            - window.first().expect("non-empty").net_bytes;
        out.push(StageMetrics {
            stage,
            power_mah,
            duration_min,
            comm_kb: comm_bytes as f64 / 1_024.0,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_current_handles_sign() {
        assert_eq!(parse_current_ua("-57600").unwrap(), 57_600.0);
        assert_eq!(parse_current_ua(" 110000 ").unwrap(), 110_000.0);
        assert!(parse_current_ua("n/a").is_err());
    }

    #[test]
    fn parse_voltage_converts_to_mv() {
        assert_eq!(parse_voltage_mv("3900000").unwrap(), 3_900.0);
        assert!(parse_voltage_mv("").is_err());
    }

    #[test]
    fn parse_top_extracts_cpu_column() {
        let out = "Tasks: 1 total\nMem: 5873664K total\n400%cpu 57%user\n\
                   \x20 PID USER PR NI VIRT RES SHR S [%CPU] %MEM TIME+ ARGS\n\
                   12345 u0_a217 10 -10 1.9G 45M 22M S  8.3 0.8 0:42.17 com.simdc.train";
        let cpu = parse_top_cpu(out).unwrap();
        assert!((cpu - 8.3).abs() < 1e-9);
    }

    #[test]
    fn parse_top_rejects_missing_row() {
        assert!(parse_top_cpu("Tasks: 0 total").is_err());
        let headers_only = "PID USER [%CPU]\n";
        assert!(parse_top_cpu(headers_only).is_err());
    }

    #[test]
    fn parse_pss_variants() {
        assert_eq!(parse_pss_kb("   TOTAL PSS: 46234 kB").unwrap(), 46_234.0);
        assert_eq!(
            parse_pss_kb("junk\nfoo TOTAL PSS: 999 kB TOTAL RSS: 1").unwrap(),
            999.0
        );
        assert!(parse_pss_kb("no memory info").is_err());
    }

    #[test]
    fn parse_wlan_sums_rx_tx() {
        let out = "Inter-| Receive | Transmit\n face |bytes packets ...\n\
                   \x20   lo: 100 2 0 0 0 0 0 0 100 2 0 0 0 0 0 0\n\
                   \x20wlan0: 20000 18 0 0 0 0 0 0 13500 15 0 0 0 0 0 0";
        assert_eq!(parse_wlan_bytes(out).unwrap(), 33_500);
        assert!(parse_wlan_bytes("lo: 1 1 1 1 1 1 1 1 1").is_err());
    }

    #[test]
    fn aggregate_reports_first_window_per_stage() {
        let poll = SimDuration::from_secs(1);
        let mk = |at: u64, stage, ua: f64, net: u64| PerfSample {
            phone: PhoneId(0),
            at: SimInstant::EPOCH + SimDuration::from_secs(at),
            stage,
            current_ua: ua,
            voltage_mv: 3_900.0,
            cpu_pct: 5.0,
            mem_kb: 20_000.0,
            net_bytes: net,
        };
        let samples = vec![
            mk(0, Stage::NoApk, 57_600.0, 0),
            mk(1, Stage::NoApk, 57_600.0, 0),
            mk(2, Stage::Training, 40_000.0, 0),
            mk(3, Stage::Training, 40_000.0, 16_950),
            mk(4, Stage::Waiting, 35_000.0, 16_950),
            mk(5, Stage::Training, 40_000.0, 16_950), // 2nd round: ignored
            mk(6, Stage::ApkClosed, 105_600.0, 33_900),
        ];
        let stages = aggregate_stages(&samples, poll);
        let training = stages.iter().find(|s| s.stage == Stage::Training).unwrap();
        assert_eq!(training.duration_min * 60.0, 2.0);
        assert!((training.comm_kb - 16_950.0 / 1_024.0).abs() < 1e-9);
        // 2 samples × 40 mA × 1 s = 80/3600 mAh.
        assert!((training.power_mah - 2.0 * 40.0 / 3_600.0).abs() < 1e-12);
        // Waiting never appears.
        assert!(stages.iter().all(|s| s.stage != Stage::Waiting));
    }
}
