//! One emulated physical phone.

use serde::{Deserialize, Serialize};
use simdc_simrt::RngStream;
use simdc_types::{DeviceGrade, PhoneId, Result, SimInstant, SimdcError};

use crate::profile::PhoneProfile;
use crate::stage::{RunPlan, Stage};

/// Where a phone comes from: the local rack or the remote Mobile Service
/// Platform (MSP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provenance {
    /// Locally racked phone.
    Local,
    /// Remote phone rented through the Mobile Service Platform.
    Msp,
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Provenance::Local => f.write_str("local"),
            Provenance::Msp => f.write_str("MSP"),
        }
    }
}

/// An emulated Android phone: stage-driven power/CPU/memory/network models
/// behind a virtual sysfs/procfs, addressable through
/// [`PhoneDevice::adb_shell`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhoneDevice {
    id: PhoneId,
    model_name: String,
    grade: DeviceGrade,
    provenance: Provenance,
    profile: PhoneProfile,
    run: Option<RunPlan>,
    train_pid: Option<u32>,
    crashed_at: Option<SimInstant>,
    noise: RngStream,
}

impl PhoneDevice {
    /// Creates an idle phone with the default profile of its grade.
    #[must_use]
    pub fn new(
        id: PhoneId,
        model_name: impl Into<String>,
        grade: DeviceGrade,
        provenance: Provenance,
        seed: u64,
    ) -> Self {
        PhoneDevice {
            id,
            model_name: model_name.into(),
            grade,
            provenance,
            profile: PhoneProfile::for_grade(grade),
            run: None,
            train_pid: None,
            crashed_at: None,
            // simlint::allow(T1/rng-stream-aliasing): labelled by phone id,
            // which PhoneMgr::register assigns uniquely — no two phones can
            // share a noise stream.
            noise: RngStream::named(seed, &format!("phone/{}", id.0)),
        }
    }

    /// Phone identifier.
    #[must_use]
    pub fn id(&self) -> PhoneId {
        self.id
    }

    /// Marketing model name (phones can be classified by model, §IV-A).
    #[must_use]
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// Performance grade.
    #[must_use]
    pub fn grade(&self) -> DeviceGrade {
        self.grade
    }

    /// Local or MSP.
    #[must_use]
    pub fn provenance(&self) -> Provenance {
        self.provenance
    }

    /// The behaviour profile.
    #[must_use]
    pub fn profile(&self) -> &PhoneProfile {
        &self.profile
    }

    /// Replaces the behaviour profile (e.g. for custom calibrations).
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` if the profile fails validation or its grade
    /// differs from the phone's.
    pub fn set_profile(&mut self, profile: PhoneProfile) -> Result<()> {
        profile.validate()?;
        if profile.grade != self.grade {
            return Err(SimdcError::InvalidConfig(format!(
                "profile grade {} does not match phone grade {}",
                profile.grade, self.grade
            )));
        }
        self.profile = profile;
        Ok(())
    }

    /// The active run plan, if any.
    #[must_use]
    pub fn run(&self) -> Option<&RunPlan> {
        self.run.as_ref()
    }

    /// Whether the phone is executing (or scheduled to execute) work at
    /// `now`.
    #[must_use]
    pub fn is_busy(&self, now: SimInstant) -> bool {
        if self.crashed_at.is_some_and(|t| now >= t) {
            return false;
        }
        self.run.as_ref().is_some_and(|r| now < r.end())
    }

    /// Whether the phone has crashed (ADB unreachable) as of `now`.
    #[must_use]
    pub fn is_crashed(&self, now: SimInstant) -> bool {
        self.crashed_at.is_some_and(|t| now >= t)
    }

    /// The instant an injected crash takes (or took) effect, if any — the
    /// availability index schedules the offline transition from this.
    #[must_use]
    pub fn crashed_at(&self) -> Option<SimInstant> {
        self.crashed_at
    }

    /// Assigns a run plan.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::PhoneUnavailable`] if the phone is busy at the
    /// plan's start or has crashed.
    pub fn assign_run(&mut self, plan: RunPlan) -> Result<()> {
        if self.is_crashed(plan.start()) || self.is_busy(plan.start()) {
            return Err(SimdcError::PhoneUnavailable(self.id));
        }
        // Deterministic fake pid derived from the phone id and task.
        self.train_pid = Some(10_000 + (self.id.0 * 13 + plan.task.0 as u32 * 7) % 20_000);
        self.run = Some(plan);
        Ok(())
    }

    /// Reboots a crashed phone: clears the crash state and any stale run so
    /// the device becomes selectable again.
    pub fn reboot(&mut self) {
        self.crashed_at = None;
        self.run = None;
        self.train_pid = None;
    }

    /// Clears the current run (task finished or torn down).
    pub fn clear_run(&mut self) {
        self.run = None;
        self.train_pid = None;
    }

    /// Injects a crash at `at`: from then on the device drops off ADB until
    /// [`PhoneDevice::reboot`] is called.
    pub fn inject_crash(&mut self, at: SimInstant) {
        self.crashed_at = Some(at);
    }

    /// The lifecycle stage at `now` ([`Stage::ApkClosed`] outside any run
    /// is reported as `None` — the phone is simply idle).
    #[must_use]
    pub fn stage_at(&self, now: SimInstant) -> Option<Stage> {
        if self.is_crashed(now) {
            return None;
        }
        self.run.as_ref().and_then(|r| r.stage_at(now))
    }

    /// Pid of the training process if the APK is alive at `now`.
    #[must_use]
    pub fn train_pid_at(&self, now: SimInstant) -> Option<u32> {
        match self.stage_at(now) {
            Some(s) if s.apk_running() => self.train_pid,
            _ => None,
        }
    }

    fn noisy(&mut self, value: f64) -> f64 {
        let frac = self.profile.noise_frac;
        if frac == 0.0 {
            return value;
        }
        value * self.noise.uniform_range(1.0 - frac, 1.0 + frac)
    }

    /// Instantaneous battery discharge current in µA.
    #[must_use]
    pub fn current_ua_at(&mut self, now: SimInstant) -> f64 {
        let ma = match self.stage_at(now) {
            Some(stage) => self.profile.stage_current(stage),
            None => 20.0, // deep idle
        };
        self.noisy(ma * 1_000.0)
    }

    /// Instantaneous battery voltage in µV (the sysfs unit; PhoneMgr
    /// converts to the mV the paper reports).
    #[must_use]
    pub fn voltage_uv_at(&mut self, _now: SimInstant) -> f64 {
        let base = self.profile.voltage_mv * 1_000.0;
        // Voltage wobbles far less than current.
        base * self.noise.uniform_range(0.995, 1.005)
    }

    /// Instantaneous CPU usage of the training process, in percent.
    ///
    /// During training the load is a slow sine around the profile base
    /// (Fig 5's 4–13% band); idle stages sit near the idle floor.
    #[must_use]
    pub fn cpu_pct_at(&mut self, now: SimInstant) -> f64 {
        let p = &self.profile;
        let value = match self.stage_at(now) {
            Some(Stage::Training) => {
                let run = self.run.as_ref().expect("stage implies run");
                let t = run.training_elapsed_at(now).as_secs_f64();
                // 20 s oscillation plus a short ramp-in at round start.
                let osc = (t / 20.0 * std::f64::consts::TAU).sin();
                let (_, progress) = run.round_progress_at(now);
                let ramp = (progress * 8.0).min(1.0);
                p.cpu_idle_pct
                    + ramp
                        * (p.cpu_train_base_pct - p.cpu_idle_pct
                            + p.cpu_train_amp_pct * 0.5 * (1.0 + osc))
            }
            Some(Stage::ApkLaunch) => p.cpu_idle_pct + 2.0,
            Some(_) => p.cpu_idle_pct,
            None => 0.3,
        };
        self.noisy(value).clamp(0.0, 100.0)
    }

    /// Instantaneous PSS memory of the training process in KB.
    ///
    /// Ramps from the launch footprint to the training plateau over
    /// `mem_ramp` of *active training time* and stays there across waiting
    /// gaps, matching Fig 5's 10→50 MB envelope.
    #[must_use]
    pub fn mem_kb_at(&mut self, now: SimInstant) -> f64 {
        let p = &self.profile;
        let value = match self.stage_at(now) {
            Some(stage) if stage.apk_running() => {
                let run = self.run.as_ref().expect("stage implies run");
                let active = run.training_elapsed_at(now).as_secs_f64();
                let ramp = (active / p.mem_ramp.as_secs_f64()).min(1.0);
                let mb = p.mem_launch_mb + ramp * (p.mem_train_peak_mb - p.mem_launch_mb);
                mb * 1_024.0
            }
            _ => 0.0, // process not alive
        };
        if value == 0.0 {
            0.0
        } else {
            self.noisy(value)
        }
    }

    /// Cumulative network bytes (rx + tx) of the training process since APK
    /// launch.
    ///
    /// Each round transfers `comm_kb_per_round`, spread uniformly over the
    /// training window (model download at the start, update upload at the
    /// end, gradients in between).
    #[must_use]
    pub fn net_bytes_at(&self, now: SimInstant) -> u64 {
        let Some(run) = self.run.as_ref() else {
            return 0;
        };
        if self.is_crashed(now) {
            return 0;
        }
        let (completed, progress) = run.round_progress_at(now);
        let kb = self.profile.comm_kb_per_round * (f64::from(completed) + progress);
        (kb * 1_024.0).round() as u64
    }

    /// Split of [`PhoneDevice::net_bytes_at`] into (rx, tx): downloads
    /// dominate (60/40).
    #[must_use]
    pub fn net_rx_tx_at(&self, now: SimInstant) -> (u64, u64) {
        let total = self.net_bytes_at(now);
        let rx = (total as f64 * 0.6).round() as u64;
        (rx, total - rx)
    }

    /// Executes an ADB shell command against this phone at virtual time
    /// `now`. See [`crate::adb`] for the supported command surface.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::AdbCommand`] for unknown commands, missing
    /// files/processes, or a crashed device.
    pub fn adb_shell(&mut self, cmd: &str, now: SimInstant) -> Result<String> {
        if self.is_crashed(now) {
            return Err(SimdcError::AdbCommand(format!(
                "device {} offline",
                self.id
            )));
        }
        crate::adb::exec(self, cmd, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdc_types::{SimDuration, TaskId};

    fn phone() -> PhoneDevice {
        PhoneDevice::new(
            PhoneId(1),
            "simphone-x1",
            DeviceGrade::High,
            Provenance::Local,
            7,
        )
    }

    fn plan(start_secs: u64) -> RunPlan {
        RunPlan::new(
            TaskId(1),
            PhoneId(1),
            SimInstant::EPOCH + SimDuration::from_secs(start_secs),
            &[SimDuration::from_secs(16), SimDuration::from_secs(16)],
            &[SimDuration::from_secs(20)],
        )
        .unwrap()
    }

    fn t(secs: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs(secs)
    }

    #[test]
    fn idle_phone_reports_idle_readings() {
        let mut p = phone();
        assert!(!p.is_busy(t(0)));
        assert_eq!(p.stage_at(t(0)), None);
        assert_eq!(p.net_bytes_at(t(0)), 0);
        assert_eq!(p.mem_kb_at(t(0)), 0.0);
        assert!(p.cpu_pct_at(t(0)) < 1.0);
        let ua = p.current_ua_at(t(0));
        assert!((15_000.0..25_000.0).contains(&ua), "idle current {ua}");
    }

    #[test]
    fn busy_phone_rejects_second_run() {
        let mut p = phone();
        p.assign_run(plan(0)).unwrap();
        assert!(p.is_busy(t(10)));
        assert!(matches!(
            p.assign_run(plan(0)),
            Err(SimdcError::PhoneUnavailable(_))
        ));
    }

    #[test]
    fn run_after_completion_is_allowed() {
        let mut p = phone();
        let first = plan(0);
        let end = first.end();
        p.assign_run(first).unwrap();
        assert!(!p.is_busy(end));
        let second = RunPlan::new(
            TaskId(2),
            PhoneId(1),
            end,
            &[SimDuration::from_secs(5)],
            &[],
        )
        .unwrap();
        p.assign_run(second).unwrap();
    }

    #[test]
    fn training_current_matches_profile_band() {
        let mut p = phone();
        p.assign_run(plan(0)).unwrap();
        // Training starts at 30 s (two 15 s measurement windows first).
        let ua = p.current_ua_at(t(35));
        let expected = 40.0 * 1_000.0;
        assert!(
            (ua - expected).abs() / expected < 0.06,
            "training current {ua} vs {expected}"
        );
    }

    #[test]
    fn cpu_rises_during_training() {
        let mut p = phone();
        p.assign_run(plan(0)).unwrap();
        let idle = p.cpu_pct_at(t(2));
        let busy = p.cpu_pct_at(t(40));
        assert!(busy > idle + 3.0, "busy {busy} vs idle {idle}");
        assert!(busy < 16.0, "Fig 5 band is ~4-13%: {busy}");
    }

    #[test]
    fn memory_ramps_and_persists_through_waiting() {
        let mut p = phone();
        p.assign_run(plan(0)).unwrap();
        let early = p.mem_kb_at(t(31));
        let late = p.mem_kb_at(t(30 + 16 + 5)); // waiting gap
        assert!(late > early, "memory should grow: {early} → {late}");
        assert!(late > 10.0 * 1024.0 && late < 55.0 * 1024.0);
    }

    #[test]
    fn net_bytes_accumulate_per_round() {
        let p = {
            let mut p = phone();
            p.assign_run(plan(0)).unwrap();
            p
        };
        let after_r1 = p.net_bytes_at(t(30 + 16 + 1));
        let expected_r1 = (33.1 * 1024.0) as u64;
        assert!((after_r1 as i64 - expected_r1 as i64).unsigned_abs() < 200);
        let end = p.run().unwrap().end();
        let total = p.net_bytes_at(end);
        assert!((total as i64 - 2 * expected_r1 as i64).unsigned_abs() < 400);
        let (rx, tx) = p.net_rx_tx_at(end);
        assert_eq!(rx + tx, total);
        assert!(rx > tx);
    }

    #[test]
    fn crash_takes_device_offline() {
        let mut p = phone();
        p.assign_run(plan(0)).unwrap();
        p.inject_crash(t(35));
        assert!(p.is_busy(t(34)));
        assert!(!p.is_busy(t(36)));
        assert!(p.is_crashed(t(36)));
        assert!(p
            .adb_shell("cat /sys/class/power_supply/battery/current_now", t(40))
            .is_err());
        // Crashed phones reject new work until rebooted.
        let end = plan(0).end();
        let next = RunPlan::new(
            TaskId(3),
            PhoneId(1),
            end,
            &[SimDuration::from_secs(5)],
            &[],
        )
        .unwrap();
        assert!(p.assign_run(next.clone()).is_err());
        p.reboot();
        assert!(!p.is_crashed(end));
        p.assign_run(next).unwrap();
    }

    #[test]
    fn pid_visible_only_while_apk_runs() {
        let mut p = phone();
        p.assign_run(plan(0)).unwrap();
        assert_eq!(p.train_pid_at(t(5)), None); // stage 1: no APK
        assert!(p.train_pid_at(t(20)).is_some()); // APK launch
        assert!(p.train_pid_at(t(40)).is_some()); // training
        let end = p.run().unwrap().end();
        assert_eq!(p.train_pid_at(end), None);
    }

    #[test]
    fn profile_swap_validates_grade() {
        let mut p = phone();
        assert!(p.set_profile(PhoneProfile::low()).is_err());
        assert!(p.set_profile(PhoneProfile::high()).is_ok());
    }
}
