//! PhoneMgr: selection, task submission and performance measurement.

use serde::{Deserialize, Serialize};
use simdc_simrt::TimeSeries;
use simdc_types::{DeviceGrade, PerGrade, PhoneId, Result, SimDuration, SimInstant, SimdcError};

use crate::device::{PhoneDevice, Provenance};
use crate::measure::{
    aggregate_stages, parse_current_ua, parse_pss_kb, parse_top_cpu, parse_voltage_mv,
    parse_wlan_bytes, PerfReport, PerfSample,
};
use crate::profile::PhoneProfile;
use crate::stage::{RunPlan, Stage};
use crate::TRAIN_PROCESS;

/// Fleet composition used by [`PhoneMgr::paper_default`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Local phones per grade.
    pub local: PerGrade<usize>,
    /// Remote MSP phones per grade.
    pub msp: PerGrade<usize>,
}

impl FleetSpec {
    /// The paper's default cluster (§VI-A): 10 local (4 High / 6 Low) and
    /// 20 MSP (13 High / 7 Low) phones.
    #[must_use]
    pub fn paper_default() -> Self {
        FleetSpec {
            local: PerGrade::from_parts(4, 6),
            msp: PerGrade::from_parts(13, 7),
        }
    }
}

/// The phone-device management module (§IV-C).
///
/// PhoneMgr owns the physical device cluster, selects phones for tasks,
/// submits run plans, and — for benchmarking devices — periodically
/// executes the paper's ADB command battery, post-processes the output and
/// aggregates it into Table-I-style reports.
#[derive(Debug)]
pub struct PhoneMgr {
    phones: Vec<PhoneDevice>,
    poll_interval: SimDuration,
}

impl PhoneMgr {
    /// Creates an empty manager polling benchmark devices every
    /// `poll_interval`.
    ///
    /// # Panics
    ///
    /// Panics if `poll_interval` is zero.
    #[must_use]
    pub fn new(poll_interval: SimDuration) -> Self {
        assert!(!poll_interval.is_zero(), "poll interval must be positive");
        PhoneMgr {
            phones: Vec::new(),
            poll_interval,
        }
    }

    /// Builds the paper's default fleet with a 1 s polling interval.
    #[must_use]
    pub fn paper_default(seed: u64) -> Self {
        Self::with_fleet(FleetSpec::paper_default(), SimDuration::from_secs(1), seed)
    }

    /// Builds a fleet from an explicit composition.
    #[must_use]
    pub fn with_fleet(spec: FleetSpec, poll_interval: SimDuration, seed: u64) -> Self {
        let mut mgr = PhoneMgr::new(poll_interval);
        let mut next_id = 0u32;
        let mut add = |mgr: &mut PhoneMgr, grade: DeviceGrade, prov: Provenance, n: usize| {
            for _ in 0..n {
                let id = PhoneId(next_id);
                next_id += 1;
                let model = format!(
                    "simphone-{}{}",
                    match prov {
                        Provenance::Local => "l",
                        Provenance::Msp => "m",
                    },
                    id.0
                );
                mgr.register(PhoneDevice::new(id, model, grade, prov, seed))
                    .expect("fresh ids cannot collide");
            }
        };
        for grade in DeviceGrade::ALL {
            add(&mut mgr, grade, Provenance::Local, *spec.local.get(grade));
        }
        for grade in DeviceGrade::ALL {
            add(&mut mgr, grade, Provenance::Msp, *spec.msp.get(grade));
        }
        mgr
    }

    /// Registers a phone.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` on a duplicate id.
    pub fn register(&mut self, phone: PhoneDevice) -> Result<()> {
        if self.phones.iter().any(|p| p.id() == phone.id()) {
            return Err(SimdcError::InvalidConfig(format!(
                "duplicate phone id {}",
                phone.id()
            )));
        }
        self.phones.push(phone);
        Ok(())
    }

    /// The polling interval for benchmark measurement.
    #[must_use]
    pub fn poll_interval(&self) -> SimDuration {
        self.poll_interval
    }

    /// Total registered phones.
    #[must_use]
    pub fn total(&self) -> usize {
        self.phones.len()
    }

    /// All phones.
    #[must_use]
    pub fn phones(&self) -> &[PhoneDevice] {
        &self.phones
    }

    /// A phone by id.
    #[must_use]
    pub fn phone(&self, id: PhoneId) -> Option<&PhoneDevice> {
        self.phones.iter().find(|p| p.id() == id)
    }

    /// Mutable access to a phone by id.
    pub fn phone_mut(&mut self, id: PhoneId) -> Option<&mut PhoneDevice> {
        self.phones.iter_mut().find(|p| p.id() == id)
    }

    /// Number of phones of `grade` (optionally filtered by provenance).
    #[must_use]
    pub fn count(&self, grade: DeviceGrade, provenance: Option<Provenance>) -> usize {
        self.phones
            .iter()
            .filter(|p| p.grade() == grade)
            .filter(|p| provenance.is_none_or(|pr| p.provenance() == pr))
            .count()
    }

    /// The *effective* behaviour profile of a grade: the nominal grade
    /// profile with training and startup durations averaged over the
    /// actual fleet. With a uniform fleet this equals
    /// [`PhoneProfile::for_grade`]; once stragglers slow individual
    /// phones down, the effective durations stretch accordingly — which is
    /// what makes fleet perturbations visible to task execution times.
    #[must_use]
    pub fn effective_profile(&self, grade: DeviceGrade) -> PhoneProfile {
        let mut profile = PhoneProfile::for_grade(grade);
        let (mut n, mut train_secs, mut startup_secs) = (0u32, 0.0f64, 0.0f64);
        for p in self.phones.iter().filter(|p| p.grade() == grade) {
            n += 1;
            train_secs += p.profile().train_duration.as_secs_f64();
            startup_secs += p.profile().framework_startup.as_secs_f64();
        }
        if n > 0 {
            profile.train_duration = SimDuration::from_secs_f64(train_secs / f64::from(n));
            profile.framework_startup = SimDuration::from_secs_f64(startup_secs / f64::from(n));
        }
        profile
    }

    /// Phones of `grade` idle (and healthy) at `now`.
    #[must_use]
    pub fn available(&self, grade: DeviceGrade, now: SimInstant) -> usize {
        self.phones
            .iter()
            .filter(|p| p.grade() == grade && !p.is_busy(now) && !p.is_crashed(now))
            .count()
    }

    /// Selects `count` idle phones of `grade` at `now`, preferring local
    /// devices over MSP rentals.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::ResourceExhausted`] if fewer than `count` are
    /// idle.
    pub fn select(
        &mut self,
        grade: DeviceGrade,
        count: usize,
        now: SimInstant,
    ) -> Result<Vec<PhoneId>> {
        let mut candidates: Vec<&PhoneDevice> = self
            .phones
            .iter()
            .filter(|p| p.grade() == grade && !p.is_busy(now) && !p.is_crashed(now))
            .collect();
        candidates.sort_by_key(|p| {
            (
                match p.provenance() {
                    Provenance::Local => 0u8,
                    Provenance::Msp => 1,
                },
                p.id(),
            )
        });
        if candidates.len() < count {
            return Err(SimdcError::ResourceExhausted {
                requested: format!("{count} {grade} phones"),
                available: format!("{} {grade} phones", candidates.len()),
            });
        }
        Ok(candidates[..count].iter().map(|p| p.id()).collect())
    }

    /// Assigns a run plan to a phone.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::PhoneUnavailable`] for unknown, busy or
    /// crashed phones.
    pub fn submit_run(&mut self, id: PhoneId, plan: RunPlan) -> Result<()> {
        let phone = self.phone_mut(id).ok_or(SimdcError::PhoneUnavailable(id))?;
        phone.assign_run(plan)
    }

    /// Executes the paper's measurement command battery against one phone
    /// at virtual time `now` and post-processes the output into a
    /// [`PerfSample`].
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::PhoneUnavailable`] for unknown phones, and
    /// [`SimdcError::AdbCommand`] when the device is offline or output is
    /// malformed. A phone without an active run yields an error too — only
    /// benchmarking devices inside a run are polled.
    pub fn poll(&mut self, id: PhoneId, now: SimInstant) -> Result<PerfSample> {
        let phone = self.phone_mut(id).ok_or(SimdcError::PhoneUnavailable(id))?;
        let stage = phone.stage_at(now).ok_or_else(|| {
            SimdcError::AdbCommand(format!("phone {id} has no active run at {now}"))
        })?;

        let current_ua = parse_current_ua(
            &phone.adb_shell("cat /sys/class/power_supply/battery/current_now", now)?,
        )?;
        let voltage_mv = parse_voltage_mv(
            &phone.adb_shell("cat /sys/class/power_supply/battery/voltage_now", now)?,
        )?;

        let pid_out = phone.adb_shell(&format!("pgrep -f {TRAIN_PROCESS}"), now)?;
        let (cpu_pct, mem_kb, net_bytes) = if pid_out.trim().is_empty() {
            // Process not alive (stages 1 and 5): nothing to measure.
            (0.0, 0.0, phone.net_bytes_at(now))
        } else {
            let pid = pid_out.trim();
            let cpu = parse_top_cpu(&phone.adb_shell(&format!("top -b -n 1 -p {pid}"), now)?)?;
            let mem = parse_pss_kb(
                &phone.adb_shell(&format!("dumpsys {TRAIN_PROCESS} | grep PSS"), now)?,
            )?;
            let net = parse_wlan_bytes(
                &phone.adb_shell(&format!("cat /proc/{pid}/net/dev | grep wlan"), now)?,
            )?;
            (cpu, mem, net)
        };

        Ok(PerfSample {
            phone: id,
            at: now,
            stage,
            current_ua,
            voltage_mv,
            cpu_pct,
            mem_kb,
            net_bytes,
        })
    }

    /// Measures a benchmarking phone across its entire active run: polls at
    /// the manager's interval, skips the waiting-for-aggregation gaps (the
    /// paper records no data there), and aggregates the Table-I stages.
    ///
    /// If the phone crashes mid-run the report contains everything captured
    /// up to the crash.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::PhoneUnavailable`] for unknown phones and
    /// `InvalidConfig` if the phone has no assigned run.
    pub fn measure_run(&mut self, id: PhoneId) -> Result<PerfReport> {
        let (start, end, grade) = {
            let phone = self.phone(id).ok_or(SimdcError::PhoneUnavailable(id))?;
            let run = phone.run().ok_or_else(|| {
                SimdcError::InvalidConfig(format!("phone {id} has no assigned run"))
            })?;
            (run.start(), run.end(), phone.grade())
        };

        let mut samples = Vec::new();
        let mut cpu_series = TimeSeries::new(format!("{id}/cpu_pct"));
        let mut mem_series = TimeSeries::new(format!("{id}/mem_mb"));
        let mut t = start;
        while t < end {
            match self.poll(id, t) {
                Ok(sample) => {
                    // The paper records no data while a device waits for
                    // global aggregation (Fig 5's dashed gaps) — waiting
                    // samples are kept only as raw stage markers so the
                    // Table-I aggregation can separate adjacent rounds.
                    if sample.stage != Stage::Waiting && sample.stage.apk_running() {
                        cpu_series.record(t, sample.cpu_pct);
                        mem_series.record(t, sample.mem_kb / 1_024.0);
                    }
                    samples.push(sample);
                }
                Err(SimdcError::AdbCommand(_)) => break, // crashed mid-run
                Err(other) => return Err(other),
            }
            t += self.poll_interval;
        }

        let stages = aggregate_stages(&samples, self.poll_interval);
        Ok(PerfReport {
            phone: id,
            grade,
            stages,
            cpu_series,
            mem_series,
            samples,
        })
    }

    /// Builds the standard run plan for a task on a phone: per-round
    /// training at the phone's profiled `β`, separated by the given
    /// aggregation gaps.
    ///
    /// # Errors
    ///
    /// Propagates [`RunPlan::new`] validation errors and
    /// [`SimdcError::PhoneUnavailable`] for unknown phones.
    pub fn plan_for(
        &self,
        id: PhoneId,
        task: simdc_types::TaskId,
        start: SimInstant,
        rounds: usize,
        waiting_gap: SimDuration,
    ) -> Result<RunPlan> {
        let phone = self.phone(id).ok_or(SimdcError::PhoneUnavailable(id))?;
        let beta = phone.profile().beta();
        let durations = vec![beta; rounds];
        let gaps = vec![waiting_gap; rounds.saturating_sub(1)];
        RunPlan::new(task, id, start, &durations, &gaps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdc_types::TaskId;

    fn t(secs: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs(secs)
    }

    #[test]
    fn paper_default_fleet_composition() {
        let mgr = PhoneMgr::paper_default(1);
        assert_eq!(mgr.total(), 30);
        assert_eq!(mgr.count(DeviceGrade::High, Some(Provenance::Local)), 4);
        assert_eq!(mgr.count(DeviceGrade::Low, Some(Provenance::Local)), 6);
        assert_eq!(mgr.count(DeviceGrade::High, Some(Provenance::Msp)), 13);
        assert_eq!(mgr.count(DeviceGrade::Low, Some(Provenance::Msp)), 7);
        assert_eq!(mgr.count(DeviceGrade::High, None), 17);
    }

    #[test]
    fn select_prefers_local_phones() {
        let mut mgr = PhoneMgr::paper_default(2);
        let picked = mgr.select(DeviceGrade::High, 5, t(0)).unwrap();
        assert_eq!(picked.len(), 5);
        let locals = picked
            .iter()
            .filter(|id| mgr.phone(**id).unwrap().provenance() == Provenance::Local)
            .count();
        assert_eq!(locals, 4, "all 4 local High phones come first");
    }

    #[test]
    fn select_fails_when_insufficient() {
        let mut mgr = PhoneMgr::paper_default(3);
        assert!(mgr.select(DeviceGrade::High, 18, t(0)).is_err());
    }

    #[test]
    fn busy_phones_are_not_selectable() {
        let mut mgr = PhoneMgr::paper_default(4);
        let id = mgr.select(DeviceGrade::High, 1, t(0)).unwrap()[0];
        let plan = mgr
            .plan_for(id, TaskId(1), t(0), 2, SimDuration::from_secs(10))
            .unwrap();
        mgr.submit_run(id, plan).unwrap();
        assert_eq!(mgr.available(DeviceGrade::High, t(5)), 16);
        let next = mgr.select(DeviceGrade::High, 17, t(5));
        assert!(next.is_err());
    }

    #[test]
    fn poll_produces_clean_sample_during_training() {
        let mut mgr = PhoneMgr::paper_default(5);
        let id = mgr.select(DeviceGrade::High, 1, t(0)).unwrap()[0];
        let plan = mgr
            .plan_for(id, TaskId(1), t(0), 1, SimDuration::ZERO)
            .unwrap();
        mgr.submit_run(id, plan).unwrap();
        let sample = mgr.poll(id, t(35)).unwrap(); // inside training
        assert_eq!(sample.stage, Stage::Training);
        assert!(sample.current_ua > 30_000.0);
        assert!((3_700.0..4_100.0).contains(&sample.voltage_mv));
        assert!(sample.cpu_pct > 2.0);
        assert!(sample.mem_kb > 10_000.0);
    }

    #[test]
    fn poll_handles_process_absent_stages() {
        let mut mgr = PhoneMgr::paper_default(6);
        let id = mgr.select(DeviceGrade::Low, 1, t(0)).unwrap()[0];
        let plan = mgr
            .plan_for(id, TaskId(1), t(0), 1, SimDuration::ZERO)
            .unwrap();
        mgr.submit_run(id, plan).unwrap();
        let sample = mgr.poll(id, t(2)).unwrap(); // stage 1, no APK
        assert_eq!(sample.stage, Stage::NoApk);
        assert_eq!(sample.cpu_pct, 0.0);
        assert_eq!(sample.mem_kb, 0.0);
    }

    #[test]
    fn poll_without_run_is_an_error() {
        let mut mgr = PhoneMgr::paper_default(7);
        let id = mgr.phones()[0].id();
        assert!(mgr.poll(id, t(0)).is_err());
    }

    #[test]
    fn measure_run_covers_all_five_stages() {
        let mut mgr = PhoneMgr::paper_default(8);
        let id = mgr.select(DeviceGrade::High, 1, t(0)).unwrap()[0];
        let plan = mgr
            .plan_for(id, TaskId(1), t(0), 3, SimDuration::from_secs(20))
            .unwrap();
        mgr.submit_run(id, plan).unwrap();
        let report = mgr.measure_run(id).unwrap();
        assert_eq!(report.stages.len(), 5);
        assert_eq!(report.grade, DeviceGrade::High);
        // Waiting periods never reach the Fig-5 traces (the paper records
        // no data while devices wait for aggregation)...
        assert!(report.cpu_series.len() < report.samples.len());
        // ...but they do appear as raw stage markers separating rounds.
        assert!(report.samples.iter().any(|s| s.stage == Stage::Waiting));
        // CPU/memory traces span the run.
        assert!(report.cpu_series.len() > 30);
        assert!(report.mem_series.stats().max > 10.0);
    }

    #[test]
    fn measured_power_tracks_table1() {
        let mut mgr =
            PhoneMgr::with_fleet(FleetSpec::paper_default(), SimDuration::from_millis(250), 9);
        let id = mgr.select(DeviceGrade::High, 1, t(0)).unwrap()[0];
        let plan = mgr
            .plan_for(id, TaskId(1), t(0), 1, SimDuration::ZERO)
            .unwrap();
        mgr.submit_run(id, plan).unwrap();
        let report = mgr.measure_run(id).unwrap();
        let training = report.stage(Stage::Training).unwrap();
        // Table I High / Training: 0.18 mAh over 0.27 min.
        assert!(
            (training.power_mah - 0.18).abs() < 0.03,
            "power {}",
            training.power_mah
        );
        assert!((training.duration_min - 0.27).abs() < 0.02);
        assert!((training.comm_kb - 33.1).abs() < 2.0);
    }

    #[test]
    fn crash_mid_run_yields_partial_report() {
        let mut mgr = PhoneMgr::paper_default(10);
        let id = mgr.select(DeviceGrade::High, 1, t(0)).unwrap()[0];
        let plan = mgr
            .plan_for(id, TaskId(1), t(0), 2, SimDuration::from_secs(10))
            .unwrap();
        mgr.submit_run(id, plan).unwrap();
        mgr.phone_mut(id).unwrap().inject_crash(t(40));
        let report = mgr.measure_run(id).unwrap();
        assert!(report.samples.last().unwrap().at < t(40));
        assert!(report.stages.len() < 5, "post-crash stages missing");
    }

    #[test]
    fn effective_profile_tracks_fleet_composition() {
        let mut mgr = PhoneMgr::paper_default(11);
        let nominal = PhoneProfile::for_grade(DeviceGrade::High);
        // Uniform fleet: effective == nominal.
        let eff = mgr.effective_profile(DeviceGrade::High);
        assert_eq!(eff.train_duration, nominal.train_duration);
        assert_eq!(eff.framework_startup, nominal.framework_startup);
        // Slow one of the 17 High phones 2x: the mean shifts by 1/17.
        let id = mgr
            .phones()
            .iter()
            .find(|p| p.grade() == DeviceGrade::High)
            .unwrap()
            .id();
        let mut slowed = nominal.clone();
        slowed.train_duration = SimDuration::from_secs_f64(nominal.beta().as_secs_f64() * 2.0);
        mgr.phone_mut(id).unwrap().set_profile(slowed).unwrap();
        let eff = mgr.effective_profile(DeviceGrade::High);
        let expected = nominal.beta().as_secs_f64() * (16.0 + 2.0) / 17.0;
        assert!((eff.train_duration.as_secs_f64() - expected).abs() < 1e-6);
        // Unknown-grade fleets fall back to the nominal profile.
        let empty = PhoneMgr::new(SimDuration::from_secs(1));
        assert_eq!(
            empty.effective_profile(DeviceGrade::Low).train_duration,
            PhoneProfile::low().train_duration
        );
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut mgr = PhoneMgr::new(SimDuration::from_secs(1));
        let p = PhoneDevice::new(PhoneId(0), "x", DeviceGrade::High, Provenance::Local, 1);
        mgr.register(p.clone()).unwrap();
        assert!(mgr.register(p).is_err());
    }
}
