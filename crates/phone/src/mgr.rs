//! PhoneMgr: selection, task submission and performance measurement.
//!
//! # Grade-indexed availability
//!
//! Fleet queries on the task-plan path — [`PhoneMgr::select`],
//! [`PhoneMgr::available`], [`PhoneMgr::count`],
//! [`PhoneMgr::effective_profile`] — are answered from an incremental
//! per-`(grade, provenance)` index (the private `index` module) instead of
//! rescanning the fleet, so planning a task costs O(k log F) in the number
//! of phones it touches, not O(F) in the fleet size. The index is
//! maintained on every state transition the manager performs
//! (registration, retirement, run submission, crash, reboot, profile
//! change); raw mutations through [`PhoneMgr::phone_mut`] are tracked as
//! dirty and re-indexed on the next query. Debug builds cross-check every
//! synced query against a full rescan.
//!
//! Availability is time-dependent (runs end, crashes strike), so index
//! queries assume a non-decreasing `now` — the discrete-event platform's
//! natural clock discipline. `select` re-verifies candidates against
//! device state regardless, so a violated assumption can under-report
//! availability but never hand out a busy phone.

// Reviewed interior-mutability exception (clippy mirror of simlint P2):
// the lazy fleet index memoises on the `&self` read path of a
// single-threaded manager; parallel workers only ever see plain-data
// `FleetSegment` inputs, so no worker-reachable code touches this cell.
#[allow(clippy::disallowed_types)]
use std::cell::RefCell;
use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use simdc_simrt::TimeSeries;
use simdc_types::{DeviceGrade, PerGrade, PhoneId, Result, SimDuration, SimInstant, SimdcError};

use crate::device::{PhoneDevice, Provenance};
use crate::index::FleetIndex;
use crate::measure::{
    aggregate_stages, parse_current_ua, parse_pss_kb, parse_top_cpu, parse_voltage_mv,
    parse_wlan_bytes, PerfReport, PerfSample,
};
use crate::profile::PhoneProfile;
use crate::stage::{RunPlan, Stage};
use crate::TRAIN_PROCESS;

/// Fleet composition used by [`PhoneMgr::paper_default`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Local phones per grade.
    pub local: PerGrade<usize>,
    /// Remote MSP phones per grade.
    pub msp: PerGrade<usize>,
}

impl FleetSpec {
    /// The paper's default cluster (§VI-A): 10 local (4 High / 6 Low) and
    /// 20 MSP (13 High / 7 Low) phones.
    #[must_use]
    pub fn paper_default() -> Self {
        FleetSpec {
            local: PerGrade::from_parts(4, 6),
            msp: PerGrade::from_parts(13, 7),
        }
    }

    /// The paper's fleet composition scaled to `total` phones (ratios
    /// 4:6:13:7 local-High : local-Low : MSP-High : MSP-Low), with any
    /// rounding remainder absorbed by the MSP-Low pool. The scale
    /// scenarios build 100k–1M-phone fleets this way.
    #[must_use]
    pub fn scaled_paper(total: usize) -> Self {
        let part = |num: usize| total * num / 30;
        let (lh, ll, mh) = (part(4), part(6), part(13));
        FleetSpec {
            local: PerGrade::from_parts(lh, ll),
            msp: PerGrade::from_parts(mh, total - lh - ll - mh),
        }
    }

    /// Total phones across grades and provenances.
    #[must_use]
    pub fn total(&self) -> usize {
        DeviceGrade::ALL
            .iter()
            .map(|&g| self.local.get(g) + self.msp.get(g))
            .sum()
    }

    /// The fleet as contiguous id-range segments in registration order
    /// (every Local grade, then every MSP grade — the exact order
    /// [`PhoneMgr::with_fleet`] registers phones). Each segment is an
    /// independent unit of work for parallel fleet construction: building
    /// the segments in any order and concatenating them by `start` yields
    /// the same fleet `with_fleet` builds one phone at a time.
    #[must_use]
    pub fn segments(&self) -> Vec<FleetSegment> {
        let mut out = Vec::with_capacity(2 * DeviceGrade::COUNT);
        let mut next_id = 0u32;
        let mut push = |grade: DeviceGrade, provenance: Provenance, count: usize| {
            if count > 0 {
                out.push(FleetSegment {
                    start: next_id,
                    count,
                    grade,
                    provenance,
                });
                next_id += count as u32;
            }
        };
        for grade in DeviceGrade::ALL {
            push(grade, Provenance::Local, *self.local.get(grade));
        }
        for grade in DeviceGrade::ALL {
            push(grade, Provenance::Msp, *self.msp.get(grade));
        }
        out
    }
}

/// One contiguous run of same-`(grade, provenance)` phone ids inside a
/// [`FleetSpec`]'s registration order — the unit of parallel fleet
/// construction. Produced by [`FleetSpec::segments`]; built into devices by
/// [`FleetSegment::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSegment {
    /// First phone id in the segment.
    pub start: u32,
    /// Number of phones.
    pub count: usize,
    /// Grade of every phone in the segment.
    pub grade: DeviceGrade,
    /// Provenance of every phone in the segment.
    pub provenance: Provenance,
}

impl FleetSegment {
    /// Builds the segment's devices — a pure function of `(self, seed)`,
    /// safe to run on any thread. Model strings and per-phone rng seeding
    /// match [`PhoneMgr::with_fleet`] exactly (which is itself built on
    /// this function, so the two cannot drift).
    #[must_use]
    pub fn build(&self, seed: u64) -> Vec<PhoneDevice> {
        let prefix = match self.provenance {
            Provenance::Local => "l",
            Provenance::Msp => "m",
        };
        (0..self.count as u32)
            .map(|i| {
                let id = PhoneId(self.start + i);
                let model = format!("simphone-{prefix}{}", id.0);
                PhoneDevice::new(id, model, self.grade, self.provenance, seed)
            })
            .collect()
    }

    /// Splits the segment into chunks of at most `chunk` phones, keeping
    /// id order — the fan-out step for parallel construction.
    #[must_use]
    pub fn chunked(&self, chunk: usize) -> Vec<FleetSegment> {
        let chunk = chunk.max(1);
        let mut out = Vec::with_capacity(self.count.div_ceil(chunk));
        let mut offset = 0usize;
        while offset < self.count {
            let count = chunk.min(self.count - offset);
            out.push(FleetSegment {
                start: self.start + offset as u32,
                count,
                ..*self
            });
            offset += count;
        }
        out
    }
}

/// The phone-device management module (§IV-C).
///
/// PhoneMgr owns the physical device cluster, selects phones for tasks,
/// submits run plans, and — for benchmarking devices — periodically
/// executes the paper's ADB command battery, post-processes the output and
/// aggregates it into Table-I-style reports.
#[derive(Debug)]
pub struct PhoneMgr {
    phones: Vec<PhoneDevice>,
    /// O(1) id → slot lookup (slots are stable except across `retire`,
    /// which swap-removes and patches the moved phone's entry).
    by_id: BTreeMap<PhoneId, usize>,
    poll_interval: SimDuration,
    /// Incremental availability index; interior mutability keeps the
    /// read-path API (`select`, `available`, `effective_profile`) on
    /// `&self` while the index syncs lazily. Reviewed P2 exception —
    /// see the comment on the `RefCell` import.
    #[allow(clippy::disallowed_types)]
    index: RefCell<FleetIndex>,
}

impl PhoneMgr {
    /// Creates an empty manager polling benchmark devices every
    /// `poll_interval`.
    ///
    /// # Panics
    ///
    /// Panics if `poll_interval` is zero.
    #[must_use]
    #[allow(clippy::disallowed_types)] // reviewed: see the `RefCell` import
    pub fn new(poll_interval: SimDuration) -> Self {
        assert!(!poll_interval.is_zero(), "poll interval must be positive");
        PhoneMgr {
            phones: Vec::new(),
            by_id: BTreeMap::new(),
            poll_interval,
            index: RefCell::new(FleetIndex::default()),
        }
    }

    /// Builds the paper's default fleet with a 1 s polling interval.
    #[must_use]
    pub fn paper_default(seed: u64) -> Self {
        Self::with_fleet(FleetSpec::paper_default(), SimDuration::from_secs(1), seed)
    }

    /// Builds a fleet from an explicit composition by materializing each
    /// registration-order segment in turn (see [`FleetSpec::segments`]).
    #[must_use]
    pub fn with_fleet(spec: FleetSpec, poll_interval: SimDuration, seed: u64) -> Self {
        let phones = spec
            .segments()
            .iter()
            .flat_map(|seg| seg.build(seed))
            .collect();
        Self::from_prebuilt(phones, poll_interval).expect("segment ids cannot collide")
    }

    /// Assembles a manager from devices built elsewhere — the join step of
    /// parallel fleet construction. `phones` must arrive in registration
    /// order (concatenated [`FleetSegment::build`] outputs sorted by
    /// `start`) for the fleet to be indistinguishable from a
    /// [`PhoneMgr::with_fleet`] build.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` on a duplicate phone id.
    pub fn from_prebuilt(phones: Vec<PhoneDevice>, poll_interval: SimDuration) -> Result<Self> {
        let mut mgr = PhoneMgr::new(poll_interval);
        for phone in phones {
            mgr.register(phone)?;
        }
        Ok(mgr)
    }

    /// Registers a phone.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` on a duplicate id.
    pub fn register(&mut self, phone: PhoneDevice) -> Result<()> {
        if self.by_id.contains_key(&phone.id()) {
            return Err(SimdcError::InvalidConfig(format!(
                "duplicate phone id {}",
                phone.id()
            )));
        }
        self.by_id.insert(phone.id(), self.phones.len());
        self.index.get_mut().note_registered(&phone);
        self.phones.push(phone);
        Ok(())
    }

    /// Retires a phone from the fleet (decommissioned or returned to the
    /// MSP), removing it from every availability structure. Any assigned
    /// run is abandoned with it.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::PhoneUnavailable`] for unknown ids.
    pub fn retire(&mut self, id: PhoneId) -> Result<PhoneDevice> {
        let slot = *self
            .by_id
            .get(&id)
            .ok_or(SimdcError::PhoneUnavailable(id))?;
        let phone = self.phones.swap_remove(slot);
        self.by_id.remove(&id);
        if let Some(moved) = self.phones.get(slot) {
            self.by_id.insert(moved.id(), slot);
        }
        self.index.get_mut().note_retired(&phone);
        Ok(phone)
    }

    /// The polling interval for benchmark measurement.
    #[must_use]
    pub fn poll_interval(&self) -> SimDuration {
        self.poll_interval
    }

    /// Total registered phones.
    #[must_use]
    pub fn total(&self) -> usize {
        self.phones.len()
    }

    /// All phones.
    #[must_use]
    pub fn phones(&self) -> &[PhoneDevice] {
        &self.phones
    }

    /// A phone by id.
    #[must_use]
    pub fn phone(&self, id: PhoneId) -> Option<&PhoneDevice> {
        self.by_id.get(&id).map(|&slot| &self.phones[slot])
    }

    /// Mutable access to a phone by id.
    ///
    /// The phone is marked dirty in the availability index and re-derived
    /// on the next fleet query, so arbitrary mutations (crash injection,
    /// profile swaps, run clearing) stay visible to `select`/`available`
    /// without dedicated hooks. Prefer the explicit manager APIs
    /// ([`PhoneMgr::inject_crash`], [`PhoneMgr::reboot`],
    /// [`PhoneMgr::set_phone_profile`]) where one exists.
    pub fn phone_mut(&mut self, id: PhoneId) -> Option<&mut PhoneDevice> {
        let slot = *self.by_id.get(&id)?;
        self.index.get_mut().mark_dirty(id);
        Some(&mut self.phones[slot])
    }

    /// Internal mutable access that does *not* dirty the index — for
    /// operations that cannot change availability (measurement RNG draws)
    /// or that re-index explicitly afterwards.
    fn device_mut(&mut self, id: PhoneId) -> Option<&mut PhoneDevice> {
        let slot = *self.by_id.get(&id)?;
        Some(&mut self.phones[slot])
    }

    /// Re-indexes one phone after a manager-performed mutation.
    fn touch(&mut self, id: PhoneId) {
        let slot = self.by_id[&id];
        let Self { phones, index, .. } = self;
        index.get_mut().touch(&phones[slot]);
    }

    /// Drains due availability transitions and dirty phones up to `now`,
    /// then (debug builds) asserts the index matches a full rescan.
    fn sync_index(&self, now: SimInstant) {
        let mut idx = self.index.borrow_mut();
        idx.sync(now, &self.phones, &self.by_id);
        #[cfg(debug_assertions)]
        idx.assert_parity(&self.phones);
    }

    /// Takes a phone offline (ADB unreachable) from `at` on, until
    /// [`PhoneMgr::reboot`]. `at` may lie in the future; the index flips
    /// the phone to unavailable exactly when the clock reaches it.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::PhoneUnavailable`] for unknown ids.
    pub fn inject_crash(&mut self, id: PhoneId, at: SimInstant) -> Result<()> {
        self.device_mut(id)
            .ok_or(SimdcError::PhoneUnavailable(id))?
            .inject_crash(at);
        self.touch(id);
        Ok(())
    }

    /// Reboots a crashed phone: clears the crash state and any stale run,
    /// making the device selectable again immediately.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::PhoneUnavailable`] for unknown ids.
    pub fn reboot(&mut self, id: PhoneId) -> Result<()> {
        self.device_mut(id)
            .ok_or(SimdcError::PhoneUnavailable(id))?
            .reboot();
        self.touch(id);
        Ok(())
    }

    /// Replaces a phone's behaviour profile, keeping the per-grade
    /// effective-profile sums exact.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::PhoneUnavailable`] for unknown ids and
    /// propagates profile validation errors.
    pub fn set_phone_profile(&mut self, id: PhoneId, profile: PhoneProfile) -> Result<()> {
        self.device_mut(id)
            .ok_or(SimdcError::PhoneUnavailable(id))?
            .set_profile(profile)?;
        self.touch(id);
        Ok(())
    }

    /// Number of phones of `grade` (optionally filtered by provenance).
    /// O(1) from the registration totals.
    #[must_use]
    pub fn count(&self, grade: DeviceGrade, provenance: Option<Provenance>) -> usize {
        self.index.borrow().total(grade, provenance)
    }

    /// The *effective* behaviour profile of a grade: the nominal grade
    /// profile with training and startup durations averaged over the
    /// actual fleet. With a uniform fleet this equals
    /// [`PhoneProfile::for_grade`]; once stragglers slow individual
    /// phones down, the effective durations stretch accordingly — which is
    /// what makes fleet perturbations visible to task execution times.
    ///
    /// Returns `None` when the fleet holds no phone of `grade` (drained by
    /// churn or never provisioned) — there is no device whose behaviour
    /// the profile could describe. O(1) from the per-grade running sums.
    #[must_use]
    pub fn try_effective_profile(&self, grade: DeviceGrade) -> Option<PhoneProfile> {
        self.sync_index(SimInstant::EPOCH); // flush dirty profile changes
        let sums = self.index.borrow().sums(grade);
        if sums.n == 0 {
            return None;
        }
        let mut profile = PhoneProfile::for_grade(grade);
        profile.train_duration = SimDuration::from_secs_f64(sums.train_secs / f64::from(sums.n));
        profile.framework_startup =
            SimDuration::from_secs_f64(sums.startup_secs / f64::from(sums.n));
        Some(profile)
    }

    /// [`PhoneMgr::try_effective_profile`], falling back to the nominal
    /// paper profile for a grade with no registered phones. Callers that
    /// must not plan against a phantom fleet should use the `try_` variant
    /// and surface the `None`.
    #[must_use]
    pub fn effective_profile(&self, grade: DeviceGrade) -> PhoneProfile {
        self.try_effective_profile(grade)
            .unwrap_or_else(|| PhoneProfile::for_grade(grade))
    }

    /// Phones of `grade` idle (and healthy) at `now`. O(k log F) in the
    /// transitions due since the last query, not the fleet size; assumes
    /// non-decreasing `now` across queries.
    #[must_use]
    pub fn available(&self, grade: DeviceGrade, now: SimInstant) -> usize {
        self.sync_index(now);
        self.index.borrow().free_count(grade)
    }

    /// Selects `count` idle phones of `grade` at `now`, preferring local
    /// devices over MSP rentals (ids ascending within each provenance).
    ///
    /// Selection is a pure query — phones become busy only when a run is
    /// submitted — so it borrows `self` immutably; the availability index
    /// syncs behind a `RefCell`.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::ResourceExhausted`] if fewer than `count` are
    /// idle.
    pub fn select(
        &self,
        grade: DeviceGrade,
        count: usize,
        now: SimInstant,
    ) -> Result<Vec<PhoneId>> {
        self.select_where(grade, count, now, None)
    }

    /// [`PhoneMgr::select`] with a reserved-phone overlay: `reserved` ids
    /// are treated as busy even though no run has been assigned yet. The
    /// batch plan dispatcher uses this to replay sequential admission —
    /// task B's selection must skip the phones task A picked an instant
    /// ago, before A's run plans have actually been submitted. Reported
    /// availability subtracts the reserved phones of the grade, so error
    /// messages match what the sequential path would say.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::ResourceExhausted`] if fewer than `count`
    /// unreserved phones are idle.
    pub fn select_excluding(
        &self,
        grade: DeviceGrade,
        count: usize,
        now: SimInstant,
        reserved: &std::collections::BTreeSet<PhoneId>,
    ) -> Result<Vec<PhoneId>> {
        self.select_where(grade, count, now, Some(reserved))
    }

    /// The one selection body behind [`PhoneMgr::select`] and
    /// [`PhoneMgr::select_excluding`], so the two orders cannot drift.
    fn select_where(
        &self,
        grade: DeviceGrade,
        count: usize,
        now: SimInstant,
        reserved: Option<&std::collections::BTreeSet<PhoneId>>,
    ) -> Result<Vec<PhoneId>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        self.sync_index(now);
        let idx = self.index.borrow();
        let exhausted = |available: usize| SimdcError::ResourceExhausted {
            requested: format!("{count} {grade} phones"),
            available: format!("{available} {grade} phones"),
        };
        // Reserved ids currently sitting in this grade's free sets — the
        // phones a sequential run would already have marked busy.
        let reserved_free = reserved.map_or(0, |set| {
            set.iter()
                .filter(|id| {
                    self.by_id.get(id).is_some_and(|&slot| {
                        let p = &self.phones[slot];
                        p.grade() == grade && !p.is_busy(now) && !p.is_crashed(now)
                    })
                })
                .count()
        });
        // O(1) shortfall check so an unsatisfiable request never walks the
        // free set (the scheduler probes depleted grades repeatedly).
        let free = idx.free_count(grade).saturating_sub(reserved_free);
        if free < count {
            return Err(exhausted(free));
        }
        let mut picked = Vec::with_capacity(count);
        for id in idx.iter_free(grade) {
            if reserved.is_some_and(|set| set.contains(&id)) {
                continue;
            }
            // Defensive re-verification: free sets are exact for
            // monotonically advancing query times; this guards the
            // invariant even if a caller runs time backwards.
            let phone = &self.phones[self.by_id[&id]];
            if phone.is_busy(now) || phone.is_crashed(now) {
                continue;
            }
            picked.push(id);
            if picked.len() == count {
                return Ok(picked);
            }
        }
        // Only reachable when re-verification skipped stale entries, i.e.
        // a caller violated the monotone-clock assumption.
        Err(exhausted(picked.len()))
    }

    /// Assigns a run plan to a phone.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::PhoneUnavailable`] for unknown, busy or
    /// crashed phones.
    pub fn submit_run(&mut self, id: PhoneId, plan: RunPlan) -> Result<()> {
        let phone = self
            .device_mut(id)
            .ok_or(SimdcError::PhoneUnavailable(id))?;
        phone.assign_run(plan)?;
        self.touch(id);
        Ok(())
    }

    /// Executes the paper's measurement command battery against one phone
    /// at virtual time `now` and post-processes the output into a
    /// [`PerfSample`].
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::PhoneUnavailable`] for unknown phones, and
    /// [`SimdcError::AdbCommand`] when the device is offline or output is
    /// malformed. A phone without an active run yields an error too — only
    /// benchmarking devices inside a run are polled.
    pub fn poll(&mut self, id: PhoneId, now: SimInstant) -> Result<PerfSample> {
        // Measurement draws device noise (mutating the RNG stream) but
        // never changes availability, so it bypasses the dirty tracking.
        let phone = self
            .device_mut(id)
            .ok_or(SimdcError::PhoneUnavailable(id))?;
        let stage = phone.stage_at(now).ok_or_else(|| {
            SimdcError::AdbCommand(format!("phone {id} has no active run at {now}"))
        })?;

        let current_ua = parse_current_ua(
            &phone.adb_shell("cat /sys/class/power_supply/battery/current_now", now)?,
        )?;
        let voltage_mv = parse_voltage_mv(
            &phone.adb_shell("cat /sys/class/power_supply/battery/voltage_now", now)?,
        )?;

        let pid_out = phone.adb_shell(&format!("pgrep -f {TRAIN_PROCESS}"), now)?;
        let (cpu_pct, mem_kb, net_bytes) = if pid_out.trim().is_empty() {
            // Process not alive (stages 1 and 5): nothing to measure.
            (0.0, 0.0, phone.net_bytes_at(now))
        } else {
            let pid = pid_out.trim();
            let cpu = parse_top_cpu(&phone.adb_shell(&format!("top -b -n 1 -p {pid}"), now)?)?;
            let mem = parse_pss_kb(
                &phone.adb_shell(&format!("dumpsys {TRAIN_PROCESS} | grep PSS"), now)?,
            )?;
            let net = parse_wlan_bytes(
                &phone.adb_shell(&format!("cat /proc/{pid}/net/dev | grep wlan"), now)?,
            )?;
            (cpu, mem, net)
        };

        Ok(PerfSample {
            phone: id,
            at: now,
            stage,
            current_ua,
            voltage_mv,
            cpu_pct,
            mem_kb,
            net_bytes,
        })
    }

    /// Measures a benchmarking phone across its entire active run: polls at
    /// the manager's interval, skips the waiting-for-aggregation gaps (the
    /// paper records no data there), and aggregates the Table-I stages.
    ///
    /// If the phone crashes mid-run the report contains everything captured
    /// up to the crash.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::PhoneUnavailable`] for unknown phones and
    /// `InvalidConfig` if the phone has no assigned run.
    pub fn measure_run(&mut self, id: PhoneId) -> Result<PerfReport> {
        let (start, end, grade) = {
            let phone = self.phone(id).ok_or(SimdcError::PhoneUnavailable(id))?;
            let run = phone.run().ok_or_else(|| {
                SimdcError::InvalidConfig(format!("phone {id} has no assigned run"))
            })?;
            (run.start(), run.end(), phone.grade())
        };

        let mut samples = Vec::new();
        let mut cpu_series = TimeSeries::new(format!("{id}/cpu_pct"));
        let mut mem_series = TimeSeries::new(format!("{id}/mem_mb"));
        let mut t = start;
        while t < end {
            match self.poll(id, t) {
                Ok(sample) => {
                    // The paper records no data while a device waits for
                    // global aggregation (Fig 5's dashed gaps) — waiting
                    // samples are kept only as raw stage markers so the
                    // Table-I aggregation can separate adjacent rounds.
                    if sample.stage != Stage::Waiting && sample.stage.apk_running() {
                        cpu_series.record(t, sample.cpu_pct);
                        mem_series.record(t, sample.mem_kb / 1_024.0);
                    }
                    samples.push(sample);
                }
                Err(SimdcError::AdbCommand(_)) => break, // crashed mid-run
                Err(other) => return Err(other),
            }
            t += self.poll_interval;
        }

        let stages = aggregate_stages(&samples, self.poll_interval);
        Ok(PerfReport {
            phone: id,
            grade,
            stages,
            cpu_series,
            mem_series,
            samples,
        })
    }

    /// Builds the standard run plan for a task on a phone: per-round
    /// training at the phone's profiled `β`, separated by the given
    /// aggregation gaps.
    ///
    /// # Errors
    ///
    /// Propagates [`RunPlan::new`] validation errors and
    /// [`SimdcError::PhoneUnavailable`] for unknown phones.
    pub fn plan_for(
        &self,
        id: PhoneId,
        task: simdc_types::TaskId,
        start: SimInstant,
        rounds: usize,
        waiting_gap: SimDuration,
    ) -> Result<RunPlan> {
        let phone = self.phone(id).ok_or(SimdcError::PhoneUnavailable(id))?;
        let beta = phone.profile().beta();
        let durations = vec![beta; rounds];
        let gaps = vec![waiting_gap; rounds.saturating_sub(1)];
        RunPlan::new(task, id, start, &durations, &gaps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdc_types::TaskId;

    fn t(secs: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs(secs)
    }

    #[test]
    fn paper_default_fleet_composition() {
        let mgr = PhoneMgr::paper_default(1);
        assert_eq!(mgr.total(), 30);
        assert_eq!(mgr.count(DeviceGrade::High, Some(Provenance::Local)), 4);
        assert_eq!(mgr.count(DeviceGrade::Low, Some(Provenance::Local)), 6);
        assert_eq!(mgr.count(DeviceGrade::High, Some(Provenance::Msp)), 13);
        assert_eq!(mgr.count(DeviceGrade::Low, Some(Provenance::Msp)), 7);
        assert_eq!(mgr.count(DeviceGrade::High, None), 17);
    }

    #[test]
    fn scaled_paper_fleet_preserves_total_and_ratio() {
        for total in [30, 100, 1_000, 100_000, 999_999] {
            let spec = FleetSpec::scaled_paper(total);
            assert_eq!(spec.total(), total, "total {total}");
        }
        let spec = FleetSpec::scaled_paper(300_000);
        assert_eq!(*spec.local.get(DeviceGrade::High), 40_000);
        assert_eq!(*spec.msp.get(DeviceGrade::High), 130_000);
    }

    #[test]
    fn select_prefers_local_phones() {
        let mgr = PhoneMgr::paper_default(2);
        let picked = mgr.select(DeviceGrade::High, 5, t(0)).unwrap();
        assert_eq!(picked.len(), 5);
        let locals = picked
            .iter()
            .filter(|id| mgr.phone(**id).unwrap().provenance() == Provenance::Local)
            .count();
        assert_eq!(locals, 4, "all 4 local High phones come first");
    }

    #[test]
    fn select_is_a_pure_query_on_a_shared_reference() {
        let mgr = PhoneMgr::paper_default(12);
        let shared: &PhoneMgr = &mgr;
        let a = shared.select(DeviceGrade::High, 3, t(0)).unwrap();
        let b = shared.select(DeviceGrade::High, 3, t(0)).unwrap();
        assert_eq!(a, b, "selection must not consume availability");
    }

    #[test]
    fn select_fails_when_insufficient() {
        let mgr = PhoneMgr::paper_default(3);
        assert!(mgr.select(DeviceGrade::High, 18, t(0)).is_err());
    }

    #[test]
    fn busy_phones_are_not_selectable() {
        let mut mgr = PhoneMgr::paper_default(4);
        let id = mgr.select(DeviceGrade::High, 1, t(0)).unwrap()[0];
        let plan = mgr
            .plan_for(id, TaskId(1), t(0), 2, SimDuration::from_secs(10))
            .unwrap();
        mgr.submit_run(id, plan).unwrap();
        assert_eq!(mgr.available(DeviceGrade::High, t(5)), 16);
        let next = mgr.select(DeviceGrade::High, 17, t(5));
        assert!(next.is_err());
    }

    #[test]
    fn availability_returns_when_the_run_ends() {
        let mut mgr = PhoneMgr::paper_default(13);
        let id = mgr.select(DeviceGrade::High, 1, t(0)).unwrap()[0];
        let plan = mgr
            .plan_for(id, TaskId(1), t(0), 1, SimDuration::ZERO)
            .unwrap();
        let end = plan.end();
        mgr.submit_run(id, plan).unwrap();
        assert_eq!(mgr.available(DeviceGrade::High, t(5)), 16);
        // The first query at/after the run's end sees the phone free again
        // without any explicit release call.
        assert_eq!(mgr.available(DeviceGrade::High, end), 17);
        let again = mgr.select(DeviceGrade::High, 17, end).unwrap();
        assert!(again.contains(&id));
    }

    #[test]
    fn crash_and_reboot_flow_through_the_index() {
        let mut mgr = PhoneMgr::paper_default(14);
        let id = mgr.select(DeviceGrade::High, 1, t(0)).unwrap()[0];
        // Future crash: still available until the onset instant.
        mgr.inject_crash(id, t(50)).unwrap();
        assert_eq!(mgr.available(DeviceGrade::High, t(10)), 17);
        assert_eq!(mgr.available(DeviceGrade::High, t(50)), 16);
        assert!(mgr.select(DeviceGrade::High, 17, t(60)).is_err());
        mgr.reboot(id).unwrap();
        assert_eq!(mgr.available(DeviceGrade::High, t(60)), 17);
        assert!(mgr.inject_crash(PhoneId(9_999), t(0)).is_err());
    }

    #[test]
    fn retire_removes_phones_from_counts_and_selection() {
        let mut mgr = PhoneMgr::paper_default(15);
        let id = mgr.select(DeviceGrade::High, 1, t(0)).unwrap()[0];
        let retired = mgr.retire(id).unwrap();
        assert_eq!(retired.id(), id);
        assert_eq!(mgr.total(), 29);
        assert_eq!(mgr.count(DeviceGrade::High, None), 16);
        assert_eq!(mgr.available(DeviceGrade::High, t(0)), 16);
        assert!(mgr.phone(id).is_none());
        assert!(mgr.retire(id).is_err(), "double retire must fail");
        // Draining a grade entirely leaves no effective profile.
        let low_ids: Vec<PhoneId> = mgr
            .phones()
            .iter()
            .filter(|p| p.grade() == DeviceGrade::Low)
            .map(|p| p.id())
            .collect();
        for low in low_ids {
            mgr.retire(low).unwrap();
        }
        assert_eq!(mgr.count(DeviceGrade::Low, None), 0);
        assert!(mgr.try_effective_profile(DeviceGrade::Low).is_none());
        assert!(mgr.try_effective_profile(DeviceGrade::High).is_some());
    }

    #[test]
    fn poll_produces_clean_sample_during_training() {
        let mut mgr = PhoneMgr::paper_default(5);
        let id = mgr.select(DeviceGrade::High, 1, t(0)).unwrap()[0];
        let plan = mgr
            .plan_for(id, TaskId(1), t(0), 1, SimDuration::ZERO)
            .unwrap();
        mgr.submit_run(id, plan).unwrap();
        let sample = mgr.poll(id, t(35)).unwrap(); // inside training
        assert_eq!(sample.stage, Stage::Training);
        assert!(sample.current_ua > 30_000.0);
        assert!((3_700.0..4_100.0).contains(&sample.voltage_mv));
        assert!(sample.cpu_pct > 2.0);
        assert!(sample.mem_kb > 10_000.0);
    }

    #[test]
    fn poll_handles_process_absent_stages() {
        let mut mgr = PhoneMgr::paper_default(6);
        let id = mgr.select(DeviceGrade::Low, 1, t(0)).unwrap()[0];
        let plan = mgr
            .plan_for(id, TaskId(1), t(0), 1, SimDuration::ZERO)
            .unwrap();
        mgr.submit_run(id, plan).unwrap();
        let sample = mgr.poll(id, t(2)).unwrap(); // stage 1, no APK
        assert_eq!(sample.stage, Stage::NoApk);
        assert_eq!(sample.cpu_pct, 0.0);
        assert_eq!(sample.mem_kb, 0.0);
    }

    #[test]
    fn poll_without_run_is_an_error() {
        let mut mgr = PhoneMgr::paper_default(7);
        let id = mgr.phones()[0].id();
        assert!(mgr.poll(id, t(0)).is_err());
    }

    #[test]
    fn measure_run_covers_all_five_stages() {
        let mut mgr = PhoneMgr::paper_default(8);
        let id = mgr.select(DeviceGrade::High, 1, t(0)).unwrap()[0];
        let plan = mgr
            .plan_for(id, TaskId(1), t(0), 3, SimDuration::from_secs(20))
            .unwrap();
        mgr.submit_run(id, plan).unwrap();
        let report = mgr.measure_run(id).unwrap();
        assert_eq!(report.stages.len(), 5);
        assert_eq!(report.grade, DeviceGrade::High);
        // Waiting periods never reach the Fig-5 traces (the paper records
        // no data while devices wait for aggregation)...
        assert!(report.cpu_series.len() < report.samples.len());
        // ...but they do appear as raw stage markers separating rounds.
        assert!(report.samples.iter().any(|s| s.stage == Stage::Waiting));
        // CPU/memory traces span the run.
        assert!(report.cpu_series.len() > 30);
        assert!(report.mem_series.stats().max > 10.0);
    }

    #[test]
    fn measured_power_tracks_table1() {
        let mut mgr =
            PhoneMgr::with_fleet(FleetSpec::paper_default(), SimDuration::from_millis(250), 9);
        let id = mgr.select(DeviceGrade::High, 1, t(0)).unwrap()[0];
        let plan = mgr
            .plan_for(id, TaskId(1), t(0), 1, SimDuration::ZERO)
            .unwrap();
        mgr.submit_run(id, plan).unwrap();
        let report = mgr.measure_run(id).unwrap();
        let training = report.stage(Stage::Training).unwrap();
        // Table I High / Training: 0.18 mAh over 0.27 min.
        assert!(
            (training.power_mah - 0.18).abs() < 0.03,
            "power {}",
            training.power_mah
        );
        assert!((training.duration_min - 0.27).abs() < 0.02);
        assert!((training.comm_kb - 33.1).abs() < 2.0);
    }

    #[test]
    fn crash_mid_run_yields_partial_report() {
        let mut mgr = PhoneMgr::paper_default(10);
        let id = mgr.select(DeviceGrade::High, 1, t(0)).unwrap()[0];
        let plan = mgr
            .plan_for(id, TaskId(1), t(0), 2, SimDuration::from_secs(10))
            .unwrap();
        mgr.submit_run(id, plan).unwrap();
        mgr.phone_mut(id).unwrap().inject_crash(t(40));
        let report = mgr.measure_run(id).unwrap();
        assert!(report.samples.last().unwrap().at < t(40));
        assert!(report.stages.len() < 5, "post-crash stages missing");
    }

    #[test]
    fn effective_profile_tracks_fleet_composition() {
        let mut mgr = PhoneMgr::paper_default(11);
        let nominal = PhoneProfile::for_grade(DeviceGrade::High);
        // Uniform fleet: effective == nominal.
        let eff = mgr.effective_profile(DeviceGrade::High);
        assert_eq!(eff.train_duration, nominal.train_duration);
        assert_eq!(eff.framework_startup, nominal.framework_startup);
        // Slow one of the 17 High phones 2x: the mean shifts by 1/17.
        let id = mgr
            .phones()
            .iter()
            .find(|p| p.grade() == DeviceGrade::High)
            .unwrap()
            .id();
        let mut slowed = nominal.clone();
        slowed.train_duration = SimDuration::from_secs_f64(nominal.beta().as_secs_f64() * 2.0);
        mgr.set_phone_profile(id, slowed).unwrap();
        let eff = mgr.effective_profile(DeviceGrade::High);
        let expected = nominal.beta().as_secs_f64() * (16.0 + 2.0) / 17.0;
        assert!((eff.train_duration.as_secs_f64() - expected).abs() < 1e-6);
        // Unknown-grade fleets fall back to the nominal profile.
        let empty = PhoneMgr::new(SimDuration::from_secs(1));
        assert_eq!(
            empty.effective_profile(DeviceGrade::Low).train_duration,
            PhoneProfile::low().train_duration
        );
    }

    #[test]
    fn raw_phone_mut_mutations_reach_the_index() {
        let mut mgr = PhoneMgr::paper_default(16);
        let id = mgr.select(DeviceGrade::High, 1, t(0)).unwrap()[0];
        // Mutate through the raw accessor (no dedicated hook): the dirty
        // tracking must fold the change into the next query.
        mgr.phone_mut(id).unwrap().inject_crash(t(0));
        assert_eq!(mgr.available(DeviceGrade::High, t(1)), 16);
        mgr.phone_mut(id).unwrap().reboot();
        assert_eq!(mgr.available(DeviceGrade::High, t(2)), 17);
        // Profile changes through the raw accessor reach the sums too.
        let mut slowed = PhoneProfile::for_grade(DeviceGrade::High);
        slowed.train_duration = slowed.train_duration * 3;
        mgr.phone_mut(id).unwrap().set_profile(slowed).unwrap();
        let eff = mgr.effective_profile(DeviceGrade::High);
        assert!(eff.train_duration > PhoneProfile::for_grade(DeviceGrade::High).train_duration);
    }

    #[test]
    fn segments_cover_the_fleet_contiguously_in_registration_order() {
        let spec = FleetSpec::paper_default();
        let segs = spec.segments();
        assert_eq!(segs.len(), 4);
        let mut next = 0u32;
        for seg in &segs {
            assert_eq!(seg.start, next, "segments must tile the id space");
            next += seg.count as u32;
        }
        assert_eq!(next as usize, spec.total());
        // Registration order: every Local grade before any MSP grade.
        let first_msp = segs
            .iter()
            .position(|s| s.provenance == Provenance::Msp)
            .unwrap();
        assert!(segs[..first_msp]
            .iter()
            .all(|s| s.provenance == Provenance::Local));
        assert!(segs[first_msp..]
            .iter()
            .all(|s| s.provenance == Provenance::Msp));
    }

    #[test]
    fn chunked_segments_rebuild_the_segment_exactly() {
        let seg = FleetSegment {
            start: 10,
            count: 7,
            grade: DeviceGrade::Low,
            provenance: Provenance::Msp,
        };
        for chunk in [1, 2, 3, 7, 100] {
            let parts = seg.chunked(chunk);
            assert_eq!(parts.iter().map(|p| p.count).sum::<usize>(), seg.count);
            let rebuilt: Vec<PhoneDevice> = parts.iter().flat_map(|p| p.build(42)).collect();
            assert_eq!(rebuilt, seg.build(42), "chunk size {chunk}");
        }
    }

    #[test]
    fn prebuilt_segments_match_with_fleet_exactly() {
        let spec = FleetSpec::scaled_paper(90);
        let seed = 7;
        let direct = PhoneMgr::with_fleet(spec, SimDuration::from_secs(1), seed);
        let phones: Vec<PhoneDevice> = spec
            .segments()
            .iter()
            .flat_map(|seg| seg.chunked(13))
            .flat_map(|seg| seg.build(seed))
            .collect();
        let rebuilt = PhoneMgr::from_prebuilt(phones, SimDuration::from_secs(1)).unwrap();
        assert_eq!(direct.phones(), rebuilt.phones());
        // And the index answers agree.
        for grade in DeviceGrade::ALL {
            assert_eq!(
                direct.available(grade, t(0)),
                rebuilt.available(grade, t(0))
            );
            assert_eq!(
                direct.select(grade, 5, t(0)).unwrap(),
                rebuilt.select(grade, 5, t(0)).unwrap()
            );
        }
    }

    #[test]
    fn select_excluding_replays_sequential_reservation() {
        let mut mgr = PhoneMgr::paper_default(17);
        let first = mgr.select(DeviceGrade::High, 3, t(0)).unwrap();
        let reserved: std::collections::BTreeSet<PhoneId> = first.iter().copied().collect();
        // Overlay path: before any run exists, exclude the reserved set.
        let overlay_picked = mgr
            .select_excluding(DeviceGrade::High, 3, t(0), &reserved)
            .unwrap();
        let overlay_err = mgr
            .select_excluding(DeviceGrade::High, 15, t(0), &reserved)
            .unwrap_err()
            .to_string();
        // Sequential path: actually submit runs on the first batch.
        for &id in &first {
            let plan = mgr
                .plan_for(id, TaskId(1), t(0), 1, SimDuration::ZERO)
                .unwrap();
            mgr.submit_run(id, plan).unwrap();
        }
        assert_eq!(
            mgr.select(DeviceGrade::High, 3, t(0)).unwrap(),
            overlay_picked
        );
        assert_eq!(
            mgr.select(DeviceGrade::High, 15, t(0))
                .unwrap_err()
                .to_string(),
            overlay_err,
            "exhaustion reports must match the sequential wording"
        );
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut mgr = PhoneMgr::new(SimDuration::from_secs(1));
        let p = PhoneDevice::new(PhoneId(0), "x", DeviceGrade::High, Provenance::Local, 1);
        mgr.register(p.clone()).unwrap();
        assert!(mgr.register(p).is_err());
    }
}
