//! The Device Simulation substrate: a physical phone cluster behind
//! PhoneMgr.
//!
//! The paper drives real Android phones over ADB: PhoneMgr selects devices,
//! submits work, polls *benchmarking devices* for current, voltage, CPU,
//! memory and bandwidth at a fixed frequency, post-processes the noisy
//! command output and uploads the cleaned samples to a cloud database
//! (§IV-C). Real phones are not available in this environment, so this
//! crate emulates them one layer below PhoneMgr: each [`PhoneDevice`]
//! exposes a virtual sysfs/procfs and process table through an ADB-shell
//! parser, backed by grade-calibrated power/CPU/memory/network models —
//! PhoneMgr then runs the *same* command strings and parsing the paper
//! lists.
//!
//! Stage machine (Table I): ① clear background (no APK) → ② APK launch →
//! ③ training → ④ post-training → ⑤ APK closed, with unmeasured
//! *waiting-for-aggregation* gaps between training rounds (Fig 5).
//!
//! # Examples
//!
//! ```
//! use simdc_phone::{PhoneDevice, PhoneMgr, Provenance, RunPlan};
//! use simdc_types::{DeviceGrade, PhoneId, SimDuration, SimInstant, TaskId};
//!
//! let mgr = PhoneMgr::paper_default(42);
//! assert_eq!(mgr.total(), 30); // 10 local + 20 MSP phones
//! let picked = mgr
//!     .select(DeviceGrade::High, 2, SimInstant::EPOCH)
//!     .unwrap();
//! assert_eq!(picked.len(), 2);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod adb;
pub mod device;
pub(crate) mod index;
pub mod measure;
pub mod mgr;
pub mod profile;
pub mod stage;

pub use device::{PhoneDevice, Provenance};
pub use measure::{PerfReport, PerfSample, StageMetrics};
pub use mgr::{FleetSegment, FleetSpec, PhoneMgr};
pub use profile::PhoneProfile;
pub use stage::{RunPlan, Stage, StageWindow};

/// Name of the training process launched inside the business APK.
pub const TRAIN_PROCESS: &str = "com.simdc.train";
