//! Property tests for the grade-indexed availability accounting.
//!
//! The [`PhoneMgr`] answers `select` / `available` / `count` /
//! `effective_profile` from an incremental per-`(grade, provenance)` index
//! instead of rescanning the fleet. These properties drive the manager
//! through arbitrary operation sequences — selection, run submission,
//! future-dated crashes, reboots, profile slowdowns, retirement, fresh
//! registration and raw `phone_mut` mutations — with a monotonically
//! advancing clock, and after every step compare each query against a
//! brute-force rescan of the device states. (Debug builds additionally
//! self-check inside the manager; this suite is the external oracle and
//! also runs in release mode.)

use proptest::prelude::*;
use simdc_phone::{PhoneDevice, PhoneMgr, Provenance};
use simdc_types::{DeviceGrade, PhoneId, SimDuration, SimInstant, TaskId};

/// One scripted operation: `(opcode, phone pick, small duration knob)`.
type Op = (u8, u8, u16);

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..8, 0u8..64, 1u16..120), 1..48)
}

fn brute_available(mgr: &PhoneMgr, grade: DeviceGrade, now: SimInstant) -> usize {
    mgr.phones()
        .iter()
        .filter(|p| p.grade() == grade && !p.is_busy(now) && !p.is_crashed(now))
        .count()
}

/// The full idle set in the contract order: local before MSP, ids
/// ascending — what the pre-index sort produced.
fn brute_selection(mgr: &PhoneMgr, grade: DeviceGrade, now: SimInstant) -> Vec<PhoneId> {
    let mut free: Vec<&PhoneDevice> = mgr
        .phones()
        .iter()
        .filter(|p| p.grade() == grade && !p.is_busy(now) && !p.is_crashed(now))
        .collect();
    free.sort_by_key(|p| {
        (
            match p.provenance() {
                Provenance::Local => 0u8,
                Provenance::Msp => 1,
            },
            p.id(),
        )
    });
    free.iter().map(|p| p.id()).collect()
}

/// Mean `(train_duration, framework_startup)` seconds over the grade.
fn brute_mean_profile_secs(mgr: &PhoneMgr, grade: DeviceGrade) -> Option<(f64, f64)> {
    let (mut n, mut train, mut startup) = (0usize, 0.0f64, 0.0f64);
    for p in mgr.phones().iter().filter(|p| p.grade() == grade) {
        n += 1;
        train += p.profile().train_duration.as_secs_f64();
        startup += p.profile().framework_startup.as_secs_f64();
    }
    (n > 0).then(|| (train / n as f64, startup / n as f64))
}

fn pick_phone(mgr: &PhoneMgr, sel: u8) -> Option<PhoneId> {
    if mgr.total() == 0 {
        return None;
    }
    Some(mgr.phones()[sel as usize % mgr.total()].id())
}

proptest! {
    /// After any operation sequence, every index-backed query agrees with
    /// a brute-force rescan at the current instant.
    #[test]
    fn index_matches_brute_force_rescan(script in ops()) {
        let mut mgr = PhoneMgr::paper_default(17);
        let mut now = SimInstant::EPOCH;
        let mut next_fresh_id = 1_000u32;
        let mut task_seq = 1u64;

        for (op, sel, dt) in script {
            let dt = SimDuration::from_secs(u64::from(dt));
            match op {
                // Let virtual time pass: pending run-ends and scheduled
                // crash onsets between `now` and `now + dt` must surface.
                0 => now += dt,
                // Submit a run to the cheapest free phone of a grade.
                1 => {
                    let grade = DeviceGrade::ALL[sel as usize % 2];
                    if let Ok(ids) = mgr.select(grade, 1, now) {
                        let plan = mgr
                            .plan_for(ids[0], TaskId(task_seq), now, 1 + sel as usize % 3, dt)
                            .expect("selected phone accepts a plan");
                        task_seq += 1;
                        mgr.submit_run(ids[0], plan).expect("selected phone is idle");
                    }
                }
                // Crash with a (possibly future) onset.
                2 => {
                    if let Some(id) = pick_phone(&mgr, sel) {
                        mgr.inject_crash(id, now + dt).unwrap();
                    }
                }
                3 => {
                    if let Some(id) = pick_phone(&mgr, sel) {
                        mgr.reboot(id).unwrap();
                    }
                }
                // Straggler-style slowdown through the manager hook.
                4 => {
                    if let Some(id) = pick_phone(&mgr, sel) {
                        let mut profile = mgr.phone(id).unwrap().profile().clone();
                        profile.train_duration = profile.train_duration.mul_f64(1.5);
                        profile.framework_startup = profile.framework_startup.mul_f64(1.25);
                        mgr.set_phone_profile(id, profile).unwrap();
                    }
                }
                // Churn: retire / register.
                5 => {
                    if let Some(id) = pick_phone(&mgr, sel) {
                        mgr.retire(id).unwrap();
                    }
                }
                6 => {
                    let grade = DeviceGrade::ALL[sel as usize % 2];
                    let prov = if sel % 4 < 2 { Provenance::Local } else { Provenance::Msp };
                    let id = PhoneId(next_fresh_id);
                    next_fresh_id += 1;
                    mgr.register(PhoneDevice::new(id, format!("fresh-{}", id.0), grade, prov, 17))
                        .expect("fresh ids never collide");
                }
                // Raw phone_mut mutation (crash without the manager hook):
                // must reach the index via dirty tracking.
                _ => {
                    if let Some(id) = pick_phone(&mgr, sel) {
                        mgr.phone_mut(id).unwrap().inject_crash(now);
                    }
                }
            }

            for grade in DeviceGrade::ALL {
                let expected = brute_selection(&mgr, grade, now);
                prop_assert_eq!(
                    mgr.available(grade, now),
                    brute_available(&mgr, grade, now),
                    "available({grade}) diverged at {now}"
                );
                prop_assert_eq!(
                    mgr.count(grade, None),
                    mgr.phones().iter().filter(|p| p.grade() == grade).count(),
                    "count({grade}) diverged"
                );
                // Selection returns the brute-force prefix, in order; a
                // zero-count request is satisfied trivially.
                prop_assert!(mgr.select(grade, 0, now).unwrap().is_empty());
                let want = expected.len().min(3);
                if want > 0 {
                    let picked = mgr.select(grade, want, now).expect("enough free phones");
                    prop_assert_eq!(&picked[..], &expected[..want], "selection order diverged");
                }
                prop_assert!(
                    mgr.select(grade, expected.len() + 1, now).is_err(),
                    "select past the free count must exhaust"
                );
                // Effective profile means match a rescan.
                match (mgr.try_effective_profile(grade), brute_mean_profile_secs(&mgr, grade)) {
                    (Some(profile), Some((train_mean, startup_mean))) => {
                        let train = profile.train_duration.as_secs_f64();
                        prop_assert!(
                            (train - train_mean).abs() <= 1e-6 * train_mean.max(1.0),
                            "effective train duration drifted for {grade}: {train} vs {train_mean}"
                        );
                        let startup = profile.framework_startup.as_secs_f64();
                        prop_assert!(
                            (startup - startup_mean).abs() <= 1e-6 * startup_mean.max(1.0),
                            "effective startup drifted for {grade}: {startup} vs {startup_mean}"
                        );
                    }
                    (None, None) => {}
                    (got, want) => prop_assert!(
                        false,
                        "effective-profile presence diverged for {grade}: \
                         index {got:?} vs rescan {want:?}"
                    ),
                }
            }
        }
    }
}
