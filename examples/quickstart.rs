//! Quickstart: run a small federated-learning task on the paper's default
//! hybrid platform and print the round-by-round report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use simdc::prelude::*;

fn main() -> Result<(), SimdcError> {
    // 1. A synthetic Avazu-like CTR dataset: 60 training devices with
    //    heterogeneous click-through rates, plus a held-out test set.
    let data = Arc::new(CtrDataset::generate(&GeneratorConfig {
        n_devices: 60,
        n_test_devices: 10,
        mean_records_per_device: 25.0,
        feature_dim: 1 << 12,
        ctr_alpha: 2.0,
        ctr_beta: 2.0,
        seed: 42,
        ..GeneratorConfig::default()
    }));
    println!(
        "dataset: {} devices, {} examples, positive rate {:.3}",
        data.devices.len(),
        data.total_examples(),
        data.positive_rate()
    );

    // 2. The paper's default platform: a 200-core logical cluster and a
    //    30-phone fleet (4+6 local, 13+7 MSP).
    let mut platform = Platform::paper_default();

    // 3. A 3-round task simulating 20 High-grade devices; 2 benchmarking
    //    phones capture power/CPU/memory while the task trains.
    let spec = TaskSpec::builder(TaskId(1))
        .rounds(3)
        .grade(GradeRequirement {
            grade: DeviceGrade::High,
            total_devices: 20,
            benchmark_phones: 2,
            logical_unit_bundles: 40,
            units_per_device: 8,
            phones: 6,
        })
        .trigger(AggregationTrigger::DeviceThreshold { min_devices: 20 })
        .train(TrainConfig {
            learning_rate: 0.3,
            epochs: 5,
        })
        .seed(7)
        .build()?;

    platform.submit(spec, data)?;
    platform.run_until_idle();

    // 4. Inspect the report.
    let report = platform.report(TaskId(1)).expect("task completed");
    println!(
        "\nallocation: {} logical / {} phone / {} benchmark devices, planned T = {}",
        report.allocation.grades[0].logical_devices,
        report.allocation.grades[0].phone_devices,
        report.allocation.grades[0].benchmark_devices,
        report.allocation.task_time,
    );
    for round in &report.rounds {
        println!(
            "{}: {} updates aggregated at {} (loss {:.4}, test acc {:.3})",
            round.round,
            round.included_updates,
            round.aggregated_at,
            round.train_loss,
            round.eval.accuracy,
        );
    }
    for bench in &report.benchmark_reports {
        let training = bench
            .stage(Stage::Training)
            .expect("training stage measured");
        println!(
            "benchmark {}: training stage {:.2} mAh over {:.2} min, {:.1} KB comms",
            bench.phone, training.power_mah, training.duration_min, training.comm_kb
        );
    }
    println!("\ntotal virtual duration: {}", report.duration());
    Ok(())
}
