//! Phone benchmarking: drive the emulated physical-device cluster the way
//! §IV-C does — select benchmarking phones, submit a run, poll them over
//! ADB, post-process the output and print a Table-I-style stage report.
//!
//! ```sh
//! cargo run --example phone_benchmarking
//! ```

use simdc::phone::RunPlan;
use simdc::prelude::*;

fn main() -> Result<(), SimdcError> {
    let mut mgr = PhoneMgr::paper_default(2024);
    println!(
        "fleet: {} phones ({} High / {} Low)",
        mgr.total(),
        mgr.count(DeviceGrade::High, None),
        mgr.count(DeviceGrade::Low, None),
    );

    // Raw ADB access, exactly the commands the paper lists.
    let high = mgr.select(DeviceGrade::High, 1, SimInstant::EPOCH)?[0];
    let low = mgr.select(DeviceGrade::Low, 1, SimInstant::EPOCH)?[0];
    for (label, phone) in [("High", high), ("Low", low)] {
        let plan = mgr.plan_for(
            phone,
            TaskId(1),
            SimInstant::EPOCH,
            2,
            SimDuration::from_secs(25),
        )?;
        mgr.submit_run(phone, plan)?;
        let t = SimInstant::EPOCH + SimDuration::from_secs(35); // mid-training
        let device = mgr.phone_mut(phone).expect("registered");
        let current = device.adb_shell("cat /sys/class/power_supply/battery/current_now", t)?;
        let pid = device.adb_shell("pgrep -f com.simdc.train", t)?;
        let pss = device.adb_shell("dumpsys com.simdc.train | grep PSS", t)?;
        let net = device.adb_shell(&format!("cat /proc/{pid}/net/dev | grep wlan"), t)?;
        println!("\n[{label} phone {phone}] raw ADB mid-training:");
        println!("  current_now: {current} µA");
        println!("  pgrep:       pid {pid}");
        println!("  dumpsys:     {}", pss.trim());
        println!("  net/dev:     {}", net.trim());
    }

    // Full measurement sessions, aggregated per stage.
    println!("\nTable-I-style stage report (2 training rounds each):");
    println!("grade | stage              | power mAh | duration min | comm KB");
    for phone in [high, low] {
        let report = mgr.measure_run(phone)?;
        for stage in [
            Stage::NoApk,
            Stage::ApkLaunch,
            Stage::Training,
            Stage::PostTraining,
            Stage::ApkClosed,
        ] {
            if let Some(m) = report.stage(stage) {
                println!(
                    "{:>5} | {:<18} | {:>9.2} | {:>12.2} | {:>7.2}",
                    report.grade.to_string(),
                    stage.label(),
                    m.power_mah,
                    m.duration_min,
                    m.comm_kb,
                );
            }
        }
        let cpu = report.cpu_series.stats();
        let mem = report.mem_series.stats();
        println!(
            "      └ cpu {:.1}-{:.1}% (mean {:.1}), mem {:.1}-{:.1} MB over {} samples",
            cpu.min, cpu.max, cpu.mean, mem.min, mem.max, cpu.count
        );
    }

    // Failure injection: crash a phone mid-run and show the partial report.
    let victim = mgr.select(DeviceGrade::High, 1, SimInstant::EPOCH)?[0];
    let plan: RunPlan = mgr.plan_for(
        victim,
        TaskId(2),
        SimInstant::EPOCH,
        3,
        SimDuration::from_secs(20),
    )?;
    mgr.submit_run(victim, plan)?;
    mgr.phone_mut(victim)
        .expect("registered")
        .inject_crash(SimInstant::EPOCH + SimDuration::from_secs(50));
    let partial = mgr.measure_run(victim)?;
    println!(
        "\ncrash injection on {victim}: captured {} samples across {} stages before losing ADB",
        partial.samples.len(),
        partial.stages.len()
    );
    Ok(())
}
