//! Open-loop task arrivals: feed a sampled arrival process straight into
//! the platform through [`SubmissionSource`].
//!
//! The scenario engine (`simdc-workload`) layers fleet dynamics and a
//! dispatch cadence on top of the event loop; when all you need is "tasks
//! arrive over time, run them", implement `SubmissionSource` over a
//! sampled schedule and let [`Platform::run_from_source`] handle the
//! arrival-paced admission waves. Queueing delay shows up as
//! `started_at - arrival` per task.
//!
//! ```sh
//! cargo run --release --example open_loop_arrivals
//! ```

use std::sync::Arc;

use simdc::platform::{SourceRunStats, SubmissionSource};
use simdc::prelude::*;
use simdc::simrt::RngStream;
use simdc::workload::ArrivalProcess;

/// A pre-sampled arrival schedule: `(instant, spec)` pairs plus the shared
/// dataset, drained in order.
struct ScheduledSubmissions {
    queue: std::vec::IntoIter<(SimInstant, TaskSpec)>,
    dataset: Arc<CtrDataset>,
}

impl SubmissionSource for ScheduledSubmissions {
    fn next_submission(&mut self) -> Option<(SimInstant, TaskSpec, Arc<CtrDataset>)> {
        self.queue
            .next()
            .map(|(at, spec)| (at, spec, Arc::clone(&self.dataset)))
    }
}

fn main() -> Result<(), SimdcError> {
    let seed = 2025;
    let dataset = Arc::new(CtrDataset::generate(&GeneratorConfig {
        n_devices: 60,
        n_test_devices: 12,
        feature_dim: 1 << 12,
        seed,
        ..GeneratorConfig::default()
    }));

    // Sample 20 minutes of bursty traffic: light background load with a
    // 6x flash crowd every 8 minutes.
    let arrivals = ArrivalProcess::Bursty {
        base_per_min: 0.4,
        burst_multiplier: 6.0,
        burst_every: SimDuration::from_mins(8),
        burst_len: SimDuration::from_mins(1),
    };
    let mut rng = RngStream::named(seed, "open-loop/arrivals");
    let offsets = arrivals.sample(SimDuration::from_mins(20), &mut rng);

    let template = TaskTemplate::default();
    let mut template_rng = RngStream::named(seed, "open-loop/templates");
    let schedule: Vec<(SimInstant, TaskSpec)> = offsets
        .iter()
        .enumerate()
        .map(|(i, offset)| {
            (
                SimInstant::EPOCH + *offset,
                template.instantiate(TaskId(i as u64 + 1), &mut template_rng),
            )
        })
        .collect();
    println!("sampled {} arrivals over 20 min", schedule.len());

    let mut platform = Platform::paper_default();
    let mut source = ScheduledSubmissions {
        queue: schedule.clone().into_iter(),
        dataset,
    };
    let SourceRunStats {
        submitted,
        rejected,
        completed,
    } = platform.run_from_source(&mut source);
    println!("submitted {submitted}, rejected {rejected}, completed {completed}");

    for (arrival, spec) in &schedule {
        let Some(simdc::platform::TaskState::Completed {
            started_at,
            finished_at,
        }) = platform.task_state(spec.id)
        else {
            continue;
        };
        println!(
            "task {}: arrived {:>6.1}s  waited {:>6.1}s  ran {:>6.1}s",
            spec.id,
            arrival.duration_since(SimInstant::EPOCH).as_secs_f64(),
            started_at.duration_since(*arrival).as_secs_f64(),
            finished_at.duration_since(*started_at).as_secs_f64(),
        );
    }
    Ok(())
}
