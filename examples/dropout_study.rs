//! Dropout study: how device disconnections affect federated learning
//! under different data distributions (the Fig 11 scenario as a library
//! workflow).
//!
//! Sweeps DeviceFlow's transmission-failure probability over an IID and a
//! label-skewed population and prints the per-round test accuracy.
//!
//! ```sh
//! cargo run --example dropout_study
//! ```

use simdc::data::{iid_partition, label_skew_partition, LabelSkewConfig};
use simdc::deviceflow::{DeviceFlow, FlowHarness};
use simdc::ml::{evaluate, FedAvg, LocalTrainer};
use simdc::prelude::*;
use simdc::simrt::RngStream;
use simdc::types::{DeviceId, Message, MessageId, RoundId, StorageKey};

fn main() -> Result<(), SimdcError> {
    let base = CtrDataset::generate(&GeneratorConfig {
        n_devices: 200,
        n_test_devices: 40,
        mean_records_per_device: 20.0,
        feature_dim: 1 << 12,
        ctr_alpha: 2.0,
        ctr_beta: 2.0,
        seed: 9,
        ..GeneratorConfig::default()
    });
    let mut rng = RngStream::from_seed(10);
    let populations = [
        ("IID", iid_partition(&base.devices, 200, &mut rng)),
        (
            "label-skew 70/30",
            label_skew_partition(&base.devices, 200, &LabelSkewConfig::default(), &mut rng),
        ),
    ];

    let trainer = LocalTrainer::new(TrainConfig {
        learning_rate: 0.3,
        epochs: 5,
    });
    let rounds = 8u32;

    for (name, shards) in &populations {
        println!("\n=== {name} population ===");
        println!("dropout | per-round test accuracy");
        for dropout in [0.0, 0.3, 0.7, 0.9] {
            let mut flow = DeviceFlow::new();
            flow.register_task(
                TaskId(1),
                DispatchStrategy::RealTimeAccumulated {
                    thresholds: vec![1],
                    failure_prob: dropout,
                },
            )?;
            let mut harness = FlowHarness::new(flow, RngStream::from_seed(dropout.to_bits()));
            let mut global = LrModel::zeros(base.feature_dim);
            let mut seen = 0usize;
            let mut now = SimInstant::EPOCH;
            let mut accs = Vec::new();

            for r in 0..rounds {
                let round = RoundId(r);
                let updates: Vec<_> = shards
                    .iter()
                    .map(|d| trainer.train(&global, &d.data, KernelKind::Server))
                    .collect();
                harness.run_until(now);
                harness.round_started(TaskId(1), round);
                for (i, shard) in shards.iter().enumerate() {
                    let at = now + SimDuration::from_millis(i as u64 * 5);
                    harness.ingest_at(
                        at,
                        Message::model_update(
                            MessageId(u64::from(r) * shards.len() as u64 + i as u64),
                            TaskId(1),
                            DeviceId(shard.device.0),
                            round,
                            updates[i].n_samples,
                            StorageKey::for_update(TaskId(1), round, shard.device),
                            at,
                        ),
                    );
                }
                now += SimDuration::from_secs(30);
                harness.run_until(now);
                let included: Vec<_> = harness.delivered()[seen..]
                    .iter()
                    .flat_map(|b| b.messages.iter())
                    .filter(|m| m.round == round)
                    .map(|m| {
                        let idx = shards
                            .iter()
                            .position(|s| s.device.0 == m.device.0)
                            .expect("known device");
                        updates[idx].clone()
                    })
                    .collect();
                seen = harness.delivered().len();
                if !included.is_empty() {
                    global = FedAvg::aggregate(&included)?;
                }
                accs.push(evaluate(&global, &base.test).accuracy);
            }
            let rendered: Vec<String> = accs.iter().map(|a| format!("{a:.3}")).collect();
            println!("  {dropout:.1}   | {}", rendered.join(" "));
        }
    }
    println!(
        "\nTakeaway: with IID shards dropout barely matters; under label skew, high\n\
         dropout biases each round's aggregate toward whichever class mix survived."
    );
    Ok(())
}
