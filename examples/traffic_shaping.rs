//! DeviceFlow traffic shaping: replay a diurnal device-activity curve
//! against a cloud service and verify the dispatch tracks it.
//!
//! Models the §V scenario of Fig 3: devices across time zones produce a
//! double-peaked daily traffic wave. A piecewise-linear curve (morning and
//! evening peaks) is scaled onto a 2-minute dispatch window for 6,000
//! buffered messages, and the cloud-side intake is compared against the
//! user curve with Pearson correlation.
//!
//! ```sh
//! cargo run --example traffic_shaping
//! ```

use simdc::deviceflow::{DeviceFlow, FlowHarness};
use simdc::prelude::*;
use simdc::simrt::{pearson_correlation, RngStream};
use simdc::types::{DeviceId, Message, MessageId, RoundId, StorageKey};

fn main() -> Result<(), SimdcError> {
    // A daily activity curve: quiet night, morning peak, midday dip,
    // higher evening peak (x in "hours", y in relative request rate).
    let curve = TrafficFunction::PiecewiseLinear {
        points: vec![
            (0.0, 0.2),
            (6.0, 0.4),
            (9.0, 2.0),
            (13.0, 1.0),
            (19.0, 3.0),
            (23.0, 0.5),
        ],
    };
    let domain = Domain::new(0.0, 23.0)?;

    let mut flow = DeviceFlow::new();
    flow.register_task(
        TaskId(1),
        DispatchStrategy::TimeInterval {
            function: curve.clone(),
            domain,
            start: TimeSpec::Relative(SimDuration::ZERO),
            interval: SimDuration::from_secs(120),
            dropout: Dropout::NONE,
        },
    )?;

    let mut harness = FlowHarness::new(flow, RngStream::from_seed(5));
    let t0 = SimInstant::EPOCH;
    let volume = 6_000u64;
    for i in 0..volume {
        harness.ingest_at(
            t0,
            Message::model_update(
                MessageId(i),
                TaskId(1),
                DeviceId(i),
                RoundId(0),
                1,
                StorageKey::for_update(TaskId(1), RoundId(0), DeviceId(i)),
                t0,
            ),
        );
    }
    harness.round_completed_at(t0 + SimDuration::from_micros(1), TaskId(1), RoundId(0));
    harness.run();

    let sends: Vec<(f64, f64)> = harness
        .delivered()
        .iter()
        .map(|b| (b.at.as_secs_f64(), b.messages.len() as f64))
        .collect();
    let expected: Vec<f64> = sends
        .iter()
        .map(|&(t, _)| curve.eval(domain.lerp(t / 120.0)))
        .collect();
    let actual: Vec<f64> = sends.iter().map(|&(_, y)| y).collect();
    let r = pearson_correlation(&expected, &actual);

    println!(
        "dispatched {} messages over {} send events",
        volume,
        sends.len()
    );
    println!("cloud intake ↔ diurnal curve correlation: r = {r:.4}");

    // A rough ASCII sparkline of the dispatch amounts.
    let max = actual.iter().cloned().fold(1.0, f64::max);
    let bars: String = actual
        .iter()
        .step_by((actual.len() / 60).max(1))
        .map(|&v| {
            const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
            LEVELS[((v / max) * 7.0).round() as usize]
        })
        .collect();
    println!("dispatch profile: {bars}");

    assert!(r > 0.98, "dispatch should track the curve, got {r}");
    Ok(())
}
