//! Federated CTR prediction across heterogeneous grades — the paper's
//! motivating workload (§VI-A): logistic regression + FedAvg over a
//! non-IID device population, with sample-threshold aggregation and
//! stragglers left behind.
//!
//! ```sh
//! cargo run --example federated_ctr
//! ```

use std::sync::Arc;

use simdc::prelude::*;

fn main() -> Result<(), SimdcError> {
    let data = Arc::new(CtrDataset::generate(&GeneratorConfig {
        n_devices: 300,
        n_test_devices: 30,
        mean_records_per_device: 20.0,
        feature_dim: 1 << 12,
        ctr_alpha: 2.0,
        ctr_beta: 2.0,
        seed: 11,
        ..GeneratorConfig::default()
    }));

    let mut platform = Platform::paper_default();

    // Two grades; the hybrid allocation optimizer decides the split.
    // Aggregation fires once 3,000 training samples have reported —
    // slower devices of the round become stragglers.
    let spec = TaskSpec::builder(TaskId(1))
        .rounds(5)
        .grade(GradeRequirement {
            grade: DeviceGrade::High,
            total_devices: 100,
            benchmark_phones: 0,
            logical_unit_bundles: 48,
            units_per_device: 8,
            phones: 12,
        })
        .grade(GradeRequirement {
            grade: DeviceGrade::Low,
            total_devices: 100,
            benchmark_phones: 0,
            logical_unit_bundles: 24,
            units_per_device: 2,
            phones: 8,
        })
        .trigger(AggregationTrigger::SampleThreshold { min_samples: 3_000 })
        .round_timeout(SimDuration::from_mins(60))
        .train(TrainConfig {
            learning_rate: 0.3,
            epochs: 5,
        })
        .allocation(AllocationPolicy::Optimized)
        .seed(3)
        .build()?;

    platform.submit(spec, data)?;
    platform.run_until_idle();
    let report = platform.report(TaskId(1)).expect("task completed");

    println!("round | aggregated at | updates | samples | stragglers | loss   | test acc | auc");
    for r in &report.rounds {
        println!(
            "{:>5} | {:>13} | {:>7} | {:>7} | {:>10} | {:.4} | {:>8.3} | {:.3}",
            r.round.0 + 1,
            r.aggregated_at.to_string(),
            r.included_updates,
            r.included_samples,
            r.stragglers,
            r.train_loss,
            r.eval.accuracy,
            r.eval.auc,
        );
    }
    println!(
        "\nfinal model: {} parameters, l2 norm {:.4}",
        report.final_model.dim(),
        report.final_model.l2_norm()
    );
    println!("virtual task duration: {}", report.duration());
    Ok(())
}
