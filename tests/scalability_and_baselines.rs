//! Cross-crate checks of the scalability story (Fig 8) and the baseline
//! comparators: orderings the paper reports must hold for the calibrated
//! cost models, and the baselines must agree with the platform
//! algorithmically.

use simdc::baselines::{run_round, BaselineSimulator, FedScaleSim, FederatedScopeSim};
use simdc::cluster::{ClusterConfig, CostModel, JobSpec, LogicalCluster};
use simdc::ml::{evaluate, LrModel};
use simdc::prelude::*;
use simdc::simrt::RngStream;
use simdc::types::{DeviceId, PerGrade, RoundId};

fn simdc_round_secs(n: u64) -> f64 {
    let mut cluster = LogicalCluster::new(ClusterConfig {
        node_template: ResourceBundle::cores_gib(200, 300),
        initial_nodes: 1,
        max_nodes: 1,
        cost: CostModel {
            jitter_frac: 0.0,
            compute_per_device: PerGrade::new(SimDuration::from_secs(16)),
            ..CostModel::default()
        },
        ..ClusterConfig::default()
    });
    let job = JobSpec {
        task: TaskId(1),
        round: RoundId(0),
        grade: DeviceGrade::High,
        devices: (0..n).map(DeviceId).collect(),
        unit_bundles: 200,
        units_per_device: 1,
        payload_mib: 4.0,
    };
    let mut rng = RngStream::from_seed(1);
    let plan = cluster.submit_job(&job, &mut rng).unwrap();
    plan.makespan.as_secs_f64() + 2.5
}

#[test]
fn fig8_orderings_hold_across_four_decades() {
    let fedscale = FedScaleSim::default();
    let fedscope = FederatedScopeSim::default();
    for n in [100u64, 1_000, 10_000, 100_000] {
        let simdc = simdc_round_secs(n);
        let scale = fedscale.round_time(n).as_secs_f64();
        let scope = fedscope.round_time(n).as_secs_f64();
        // FedScale is always fastest (no device-cloud communication).
        assert!(scale < scope && scale < simdc, "n={n}");
        if n < 1_000 {
            assert!(simdc > scope, "SimDC pays realism overhead at n={n}");
        } else {
            let ratio = simdc / scope;
            assert!(
                (0.5..2.0).contains(&ratio),
                "SimDC ≈ FederatedScope at n={n}: ratio {ratio}"
            );
        }
    }
}

#[test]
// This test's assertion *is* a wall-time bound, so it reads the real
// clock (clippy.toml bans `Instant::now` in simulation code).
#[allow(clippy::disallowed_methods)]
fn simulating_100k_devices_is_tractable() {
    let start = std::time::Instant::now();
    let secs = simdc_round_secs(100_000);
    assert!(secs > 1_000.0, "virtual time is hours-scale: {secs}");
    assert!(
        start.elapsed().as_secs() < 30,
        "wall time must stay laptop-scale: {:?}",
        start.elapsed()
    );
}

#[test]
fn baseline_fedavg_agrees_with_platform_all_server_run() {
    // The FedScale/FederatedScope baselines and the SimDC platform must
    // implement the *same* FedAvg; an all-logical platform task equals the
    // baseline loop on the same participants.
    let data = std::sync::Arc::new(CtrDataset::generate(&GeneratorConfig {
        n_devices: 16,
        n_test_devices: 4,
        feature_dim: 1 << 12,
        ctr_alpha: 2.0,
        ctr_beta: 2.0,
        seed: 13,
        ..GeneratorConfig::default()
    }));
    let rounds = 3;
    let train = TrainConfig {
        learning_rate: 0.3,
        epochs: 5,
    };

    let mut baseline = LrModel::zeros(data.feature_dim);
    for _ in 0..rounds {
        baseline = run_round(&baseline, &data, 16, train).unwrap();
    }

    let mut platform = Platform::paper_default();
    let spec = TaskSpec::builder(TaskId(1))
        .rounds(rounds)
        .grade(GradeRequirement {
            grade: DeviceGrade::High,
            total_devices: 16,
            benchmark_phones: 0,
            logical_unit_bundles: 128,
            units_per_device: 8,
            phones: 0,
        })
        .trigger(AggregationTrigger::DeviceThreshold { min_devices: 16 })
        .train(train)
        .allocation(AllocationPolicy::FixedLogicalFraction(1.0))
        .build()
        .unwrap();
    platform.submit(spec, data.clone()).unwrap();
    platform.run_until_idle();
    let platform_model = platform.report(TaskId(1)).unwrap().final_model.clone();

    let acc_base = evaluate(&baseline, &data.test).accuracy;
    let acc_platform = evaluate(&platform_model, &data.test).accuracy;
    assert!(
        (acc_base - acc_platform).abs() < 1e-9,
        "identical algorithm, identical outcome: {acc_base} vs {acc_platform}"
    );
}
