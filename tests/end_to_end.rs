//! End-to-end integration: submit tasks through the full platform stack —
//! scheduler → allocation optimizer → cluster + phones → DeviceFlow →
//! cloud triggers → FedAvg — and check the cross-crate invariants.

use std::sync::Arc;

use simdc::prelude::*;

fn dataset(n: usize, seed: u64) -> Arc<CtrDataset> {
    Arc::new(CtrDataset::generate(&GeneratorConfig {
        n_devices: n,
        n_test_devices: 10,
        mean_records_per_device: 20.0,
        feature_dim: 1 << 12,
        ctr_alpha: 2.0,
        ctr_beta: 2.0,
        seed,
        ..GeneratorConfig::default()
    }))
}

fn hybrid_spec(id: u64, n_high: u64, n_low: u64) -> TaskSpec {
    TaskSpec::builder(TaskId(id))
        .rounds(3)
        .grade(GradeRequirement {
            grade: DeviceGrade::High,
            total_devices: n_high,
            benchmark_phones: 1,
            logical_unit_bundles: 48,
            units_per_device: 8,
            phones: 6,
        })
        .grade(GradeRequirement {
            grade: DeviceGrade::Low,
            total_devices: n_low,
            benchmark_phones: 1,
            logical_unit_bundles: 24,
            units_per_device: 2,
            phones: 5,
        })
        .trigger(AggregationTrigger::DeviceThreshold {
            min_devices: n_high + n_low,
        })
        .train(TrainConfig {
            learning_rate: 0.3,
            epochs: 5,
        })
        .seed(id * 31)
        .build()
        .expect("valid spec")
}

#[test]
fn hybrid_task_runs_to_completion_with_consistent_accounting() {
    let mut platform = Platform::paper_default();
    platform
        .submit(hybrid_spec(1, 30, 30), dataset(80, 1))
        .unwrap();
    platform.run_until_idle();

    let report = platform.report(TaskId(1)).expect("completed");
    assert_eq!(report.rounds.len(), 3);
    for round in &report.rounds {
        // Every device is accounted for: included + stragglers + dropped
        // equals the population.
        assert_eq!(
            round.included_updates + round.stragglers + round.dropped_messages,
            60,
            "{round:?}"
        );
        assert!(round.trigger_fired);
        assert!(round.aggregated_at >= round.started_at);
        assert!(round.included_samples > 0);
    }
    // Allocation placed every device.
    let placed: u64 = report
        .allocation
        .grades
        .iter()
        .map(|g| g.logical_devices + g.phone_devices + g.benchmark_devices)
        .sum();
    assert_eq!(placed, 60);
    // Two benchmark phones per grade were measured.
    assert_eq!(report.benchmark_reports.len(), 2);
    // Resources are fully released.
    let status = platform.status();
    assert_eq!(status.free_bundles, 200);
    assert_eq!(status.free_phones.high, 17);
    assert_eq!(status.free_phones.low, 13);
}

#[test]
fn whole_platform_run_is_deterministic() {
    let run = || {
        let mut platform = Platform::paper_default();
        platform
            .submit(hybrid_spec(1, 20, 20), dataset(50, 2))
            .unwrap();
        platform.run_until_idle();
        let report = platform.report(TaskId(1)).unwrap().clone();
        (
            report
                .rounds
                .iter()
                .map(|r| (r.aggregated_at, r.train_loss.to_bits()))
                .collect::<Vec<_>>(),
            report.final_model.clone(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn concurrent_tasks_share_the_platform() {
    let mut platform = Platform::paper_default();
    let data = dataset(60, 3);
    // Two tasks that together fit (48+24)*2 = 144 ≤ 200 bundles and
    // (6+1+5+1)*2 = 26 ≤ 30 phones.
    platform
        .submit(hybrid_spec(1, 10, 10), data.clone())
        .unwrap();
    platform.submit(hybrid_spec(2, 10, 10), data).unwrap();
    let completed = platform.run_until_idle();
    assert_eq!(completed, 2);
    for id in [1u64, 2] {
        let report = platform.report(TaskId(id)).unwrap();
        assert_eq!(report.rounds.len(), 3);
        assert!(report.final_accuracy() > 0.4);
    }
}

#[test]
fn priority_order_is_respected_under_contention() {
    let mut platform = Platform::paper_default();
    let data = dataset(60, 4);
    // Each task wants 144 bundles: only one can run at a time.
    let mut big = |id: u64, priority: u32| {
        let mut spec = hybrid_spec(id, 10, 10);
        spec.priority = priority;
        spec.grades[0].logical_unit_bundles = 96;
        spec.grades[1].logical_unit_bundles = 48;
        platform.submit(spec, data.clone()).unwrap();
    };
    big(1, 1);
    big(2, 9);
    platform.run_until_idle();
    let first = platform.report(TaskId(2)).unwrap();
    let second = platform.report(TaskId(1)).unwrap();
    assert!(
        first.started_at <= second.started_at,
        "high priority starts no later: {} vs {}",
        first.started_at,
        second.started_at
    );
}

#[test]
fn learning_improves_over_rounds_end_to_end() {
    let mut platform = Platform::paper_default();
    let mut spec = hybrid_spec(1, 25, 25);
    spec.rounds = 6;
    platform.submit(spec, dataset(60, 5)).unwrap();
    platform.run_until_idle();
    let report = platform.report(TaskId(1)).unwrap();
    let first_loss = report.rounds.first().unwrap().train_loss;
    let last_loss = report.rounds.last().unwrap().train_loss;
    assert!(
        last_loss < first_loss,
        "loss should fall: {first_loss} → {last_loss}"
    );
    assert!(report.final_accuracy() > 0.5);
}

#[test]
fn infeasible_and_duplicate_submissions_are_rejected() {
    let mut platform = Platform::paper_default();
    let data = dataset(20, 6);
    // Too many phones for the fleet.
    let mut spec = hybrid_spec(1, 10, 10);
    spec.grades[0].phones = 100;
    assert!(matches!(
        platform.submit(spec, data.clone()),
        Err(SimdcError::ResourceExhausted { .. })
    ));
    // Valid, then duplicate.
    platform
        .submit(hybrid_spec(2, 10, 10), data.clone())
        .unwrap();
    assert!(platform.submit(hybrid_spec(2, 10, 10), data).is_err());
}
