//! Integration of DeviceFlow with the platform's cloud triggers: strategy ×
//! trigger interactions that no single crate exercises alone.

use std::sync::Arc;

use simdc::prelude::*;

fn dataset(seed: u64) -> Arc<CtrDataset> {
    Arc::new(CtrDataset::generate(&GeneratorConfig {
        n_devices: 50,
        n_test_devices: 10,
        feature_dim: 1 << 12,
        ctr_alpha: 2.0,
        ctr_beta: 2.0,
        seed,
        ..GeneratorConfig::default()
    }))
}

fn spec_with(id: u64, strategy: Option<DispatchStrategy>, trigger: AggregationTrigger) -> TaskSpec {
    let mut b = TaskSpec::builder(TaskId(id));
    b.rounds(2)
        .grade(GradeRequirement {
            grade: DeviceGrade::High,
            total_devices: 24,
            benchmark_phones: 0,
            logical_unit_bundles: 48,
            units_per_device: 8,
            phones: 6,
        })
        .trigger(trigger)
        .round_timeout(SimDuration::from_mins(30))
        .train(TrainConfig {
            learning_rate: 0.3,
            epochs: 3,
        })
        .seed(id);
    if let Some(s) = strategy {
        b.strategy(s);
    }
    b.build().expect("valid spec")
}

#[test]
fn immediate_strategy_matches_direct_delivery() {
    // Routing through DeviceFlow with threshold 1 and no failures must
    // produce the same learning outcome as bypassing DeviceFlow.
    let trigger = AggregationTrigger::DeviceThreshold { min_devices: 24 };
    let run = |strategy: Option<DispatchStrategy>| {
        let mut platform = Platform::paper_default();
        let id = match strategy {
            Some(_) => 1,
            None => 2,
        };
        platform
            .submit(spec_with(id, strategy, trigger), dataset(7))
            .unwrap();
        platform.run_until_idle();
        platform.report(TaskId(id)).unwrap().final_model.clone()
    };
    let through_flow = run(Some(DispatchStrategy::immediate()));
    let direct = run(None);
    assert_eq!(through_flow, direct);
}

#[test]
fn accumulation_threshold_delays_aggregation() {
    // Batching messages in groups of 8 means the device-threshold trigger
    // fires at a batch boundary, not per message.
    let mut platform = Platform::paper_default();
    let spec = spec_with(
        1,
        Some(DispatchStrategy::RealTimeAccumulated {
            thresholds: vec![8],
            failure_prob: 0.0,
        }),
        AggregationTrigger::DeviceThreshold { min_devices: 20 },
    );
    platform.submit(spec, dataset(8)).unwrap();
    platform.run_until_idle();
    let report = platform.report(TaskId(1)).unwrap();
    for round in &report.rounds {
        // 20 needed, batches of 8 → trigger crosses at the 24-message
        // batch: everything delivered in that batch is included.
        assert_eq!(round.included_updates, 24, "{round:?}");
        assert!(round.trigger_fired);
    }
}

#[test]
fn dropout_with_timeout_still_aggregates_best_effort() {
    let mut platform = Platform::paper_default();
    let mut spec = spec_with(
        1,
        Some(DispatchStrategy::RealTimeAccumulated {
            thresholds: vec![1],
            failure_prob: 0.95,
        }),
        AggregationTrigger::DeviceThreshold { min_devices: 24 },
    );
    spec.round_timeout = SimDuration::from_mins(5);
    platform.submit(spec, dataset(9)).unwrap();
    platform.run_until_idle();
    let report = platform.report(TaskId(1)).unwrap();
    for round in &report.rounds {
        // With 95% dropout the 24-device threshold is unreachable: the
        // round times out and aggregates what survived.
        assert!(!round.trigger_fired, "{round:?}");
        assert_eq!(
            round.aggregated_at,
            round.started_at + SimDuration::from_mins(5)
        );
        assert!(round.dropped_messages >= 15, "{round:?}");
    }
}

#[test]
fn time_point_strategy_defers_everything_to_the_dispatch_point() {
    use simdc::deviceflow::TimePointRule;
    let mut platform = Platform::paper_default();
    let spec = spec_with(
        1,
        Some(DispatchStrategy::TimePoints {
            points: vec![TimePointRule {
                at: TimeSpec::Relative(SimDuration::from_secs(30)),
                count: 500,
                dropout: Dropout::NONE,
            }],
        }),
        AggregationTrigger::DeviceThreshold { min_devices: 24 },
    );
    platform.submit(spec, dataset(10)).unwrap();
    platform.run_until_idle();
    let report = platform.report(TaskId(1)).unwrap();
    for round in &report.rounds {
        // Nothing reaches the cloud until 30 s after compute finished.
        assert!(
            round.aggregated_at >= round.compute_finished_at + SimDuration::from_secs(30),
            "{round:?}"
        );
        assert_eq!(round.included_updates, 24);
    }
}

#[test]
fn sample_threshold_tracks_partial_participation() {
    let mut platform = Platform::paper_default();
    let spec = spec_with(
        1,
        None,
        // ~24 devices × ~20 samples ≈ 480 total; threshold at 200 means
        // roughly the fastest half participates.
        AggregationTrigger::SampleThreshold { min_samples: 200 },
    );
    platform.submit(spec, dataset(11)).unwrap();
    platform.run_until_idle();
    let report = platform.report(TaskId(1)).unwrap();
    for round in &report.rounds {
        assert!(round.trigger_fired);
        assert!(round.included_samples >= 200);
        assert!(
            round.included_updates < 24,
            "some devices must be stragglers: {round:?}"
        );
        assert!(round.stragglers > 0);
    }
}
